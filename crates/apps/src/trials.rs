//! Parallel, crash-isolated trial campaigns.
//!
//! Every figure in the paper's evaluation is a *campaign*: a batch of
//! independent simulated runs, each fully determined by an application, a
//! hardware configuration and a fault seed. This module runs such batches
//! across worker threads ([`run_campaign`]) with two guarantees the naive
//! serial loops could not give:
//!
//! * **Determinism.** Each trial's seed is fixed up front in its
//!   [`TrialSpec`], every trial builds its own [`Runtime`](enerj_core::Runtime)
//!   (fault PRNG state is per-run, never shared), and aggregation happens
//!   in trial-index order after all workers finish. Results are therefore
//!   bit-identical for any thread count, including the serial path.
//! * **Crash isolation.** A fault-injected run can panic — an endorsed
//!   index goes out of bounds, a corrupted loop bound overflows. The paper
//!   treats a crashed run as producing worst-case output, so each trial
//!   body runs under [`catch_unwind`]; a panic scores output error 1.0,
//!   contributes nothing to the merged statistics, and is recorded in the
//!   trial's [`panic`](TrialResult::panic) field instead of killing the
//!   campaign.
//!
//! A spec may also carry a [`recovery::Policy`]: the trial then runs under
//! the watchdog/check/retry protocol of the [`recovery`](crate::recovery)
//! module, its energy and statistics summed over every attempt, with the
//! attempt count, escalation outcome and failure causes recorded on the
//! [`TrialResult`]. Recovery uses per-trial fixed retry seeds, so
//! recovery-enabled campaigns keep the bit-identical-at-any-thread-count
//! guarantee.
//!
//! The resulting [`CampaignReport`] carries per-trial errors, merged
//! [`Stats`], per-trial [`EnergyBreakdown`]s and exact
//! [`EnergyQuantaBreakdown`]s, per-trial fault telemetry
//! ([`FaultCounters`], plus opt-in structured [`FaultEvent`] logs) and
//! wall-clock times, and serializes to JSON (`schema: "enerj-campaign/4"`)
//! for the bench binaries' `results/BENCH_*.json` reports. The fault log
//! exports as NDJSON via [`CampaignReport::write_fault_log`]. Campaigns run
//! through [`CampaignOptions`] can also report live progress (trials done,
//! panics, ETA) on stderr.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::harness::{self, FAULT_SEED_BASE};
use crate::qos::{output_error, Output};
use crate::recovery;
use crate::App;
use enerj_hw::config::{HwConfig, Level, StrategyMask};
use enerj_hw::energy::{EnergyBreakdown, EnergyQuantaBreakdown};
use enerj_hw::quanta::EnergyQuanta;
use enerj_hw::stats::Stats;
use enerj_hw::trace::FaultEvent;
use enerj_hw::FaultCounters;

/// One fully determined trial: an app, a hardware configuration, a seed.
#[derive(Clone)]
pub struct TrialSpec {
    /// The application to run.
    pub app: App,
    /// Free-form grouping label (typically the level or strategy name).
    pub label: String,
    /// Hardware configuration for this run.
    pub cfg: HwConfig,
    /// Fault seed (the serial loops use `FAULT_SEED_BASE ^ i`).
    pub seed: u64,
    /// Reference output to score against; `None` records error 0.0 and is
    /// how reference-collection campaigns are expressed.
    pub reference: Option<Arc<Output>>,
    /// Keep the trial's output in the result (reference campaigns need it;
    /// large fault campaigns usually don't).
    pub keep_output: bool,
    /// When set, the trial runs under QoS-guarded recovery: watchdog,
    /// reference-free output check, QoS threshold, and the policy's
    /// precision-escalation ladder on failure (see [`recovery`]).
    pub recovery: Option<recovery::Policy>,
}

impl TrialSpec {
    /// A fault-injection trial scored against `reference`.
    pub fn scored(
        app: &App,
        label: impl Into<String>,
        cfg: HwConfig,
        seed: u64,
        reference: Arc<Output>,
    ) -> Self {
        TrialSpec {
            app: app.clone(),
            label: label.into(),
            cfg,
            seed,
            reference: Some(reference),
            keep_output: false,
            recovery: None,
        }
    }

    /// A reference (fault-free) trial that keeps its output.
    pub fn reference(app: &App) -> Self {
        TrialSpec {
            app: app.clone(),
            label: "reference".to_owned(),
            cfg: HwConfig::for_level(Level::Medium).with_mask(StrategyMask::NONE),
            seed: 0,
            reference: None,
            keep_output: true,
            recovery: None,
        }
    }

    /// Runs this trial under `policy`'s recovery protocol.
    pub fn with_recovery(mut self, policy: recovery::Policy) -> Self {
        self.recovery = Some(policy);
        self
    }
}

/// Outcome of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Position in the campaign's spec list (aggregation order).
    pub index: usize,
    /// Application name.
    pub app: &'static str,
    /// The spec's grouping label.
    pub label: String,
    /// The fault seed used.
    pub seed: u64,
    /// Output error in `[0, 1]` against the spec's reference (0.0 when the
    /// spec had none; 1.0 when the trial panicked).
    pub error: f64,
    /// The trial's output, when the spec asked to keep it.
    pub output: Option<Output>,
    /// Operation and storage statistics (zeroed for panicked trials).
    pub stats: Stats,
    /// Normalized energy (pinned to the precise baseline, 1.0, for
    /// panicked trials — a crashed run saves nothing we can claim).
    pub energy: EnergyBreakdown,
    /// Exact integer energy (zeroed for panicked trials, matching their
    /// zeroed [`stats`](Self::stats)): scaled and baseline quanta per
    /// component. Campaign totals built from this field are bit-identical
    /// for any merge order or thread count.
    pub energy_quanta: EnergyQuantaBreakdown,
    /// Wall-clock time of this trial.
    pub wall: Duration,
    /// The panic payload, when the trial crashed.
    pub panic: Option<String>,
    /// Per-kind fault counters (zeroed for panicked trials, whose machine
    /// state is unrecoverable).
    pub fault_counts: FaultCounters,
    /// Structured fault events, when the campaign ran with
    /// [`CampaignOptions::log_events`] (empty otherwise, and for panicked
    /// trials).
    pub events: Vec<FaultEvent>,
    /// Executions this trial took: 1 without recovery (or when the first
    /// attempt passed), one extra per escalation rung tried.
    pub attempts: u32,
    /// The ladder rung whose output was accepted, when recovery was needed
    /// and succeeded (`None` for unrecovered or never-failed trials).
    pub recovered_at_level: Option<String>,
    /// Why each failed attempt was rejected, in attempt order (rendered
    /// [`recovery::FailureCause`]s; for plain trials, the panic cause when
    /// the trial crashed).
    pub failure_causes: Vec<String>,
    /// Energy charged to attempts whose output was *not* accepted — the
    /// price of recovery, already included in [`energy`](Self::energy).
    pub recovery_energy_overhead: f64,
    /// The same overhead in exact quanta, already included in
    /// [`energy_quanta`](Self::energy_quanta): the accounting identity
    /// `accepted-attempt energy + overhead == energy_quanta.total` holds
    /// exactly.
    pub recovery_energy_overhead_quanta: EnergyQuanta,
}

impl TrialResult {
    /// Whether the trial crashed (and was scored worst-case). For
    /// recovery-enabled trials this means the *final* attempt panicked;
    /// a panic the ladder recovered from is in
    /// [`failure_causes`](Self::failure_causes) instead.
    pub fn panicked(&self) -> bool {
        self.panic.is_some()
    }

    /// Whether the accepted output came from an escalation rung.
    pub fn recovered(&self) -> bool {
        self.recovered_at_level.is_some()
    }
}

/// The aggregated outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-trial results, in spec order.
    pub trials: Vec<TrialResult>,
    /// Statistics of all non-panicked trials, merged in trial order.
    pub merged_stats: Stats,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl CampaignReport {
    /// Mean output error over all trials, summed in trial-index order
    /// (bit-identical to the serial loop). Empty campaigns score 0.0.
    pub fn mean_error(&self) -> f64 {
        mean_in_order(self.trials.iter())
    }

    /// Mean output error over the trials of one `(app, label)` group,
    /// summed in trial-index order. Empty groups score 0.0.
    pub fn mean_error_for(&self, app: &str, label: &str) -> f64 {
        mean_in_order(self.trials.iter().filter(|t| t.app == app && t.label == label))
    }

    /// The trials of one `(app, label)` group, in trial-index order.
    pub fn trials_for<'a>(
        &'a self,
        app: &'a str,
        label: &'a str,
    ) -> impl Iterator<Item = &'a TrialResult> {
        self.trials.iter().filter(move |t| t.app == app && t.label == label)
    }

    /// Number of trials that panicked.
    pub fn panic_count(&self) -> usize {
        self.trials.iter().filter(|t| t.panicked()).count()
    }

    /// Number of trials whose accepted output came from an escalation rung.
    pub fn recovered_count(&self) -> usize {
        self.trials.iter().filter(|t| t.recovered()).count()
    }

    /// Total energy charged to rejected attempts across the campaign, in
    /// exact quanta. Pure integer summation: the total is independent of
    /// trial iteration order (the old f64 sum was not).
    pub fn recovery_energy_overhead(&self) -> EnergyQuanta {
        self.trials.iter().map(|t| t.recovery_energy_overhead_quanta).sum()
    }

    /// Exact energy totals over every trial, merged in trial-index order —
    /// though with quanta any order gives bit-identical results.
    pub fn energy_quanta_totals(&self) -> EnergyQuantaBreakdown {
        let mut totals = EnergyQuantaBreakdown::ZERO;
        for t in &self.trials {
            totals.merge(&t.energy_quanta);
        }
        totals
    }

    /// Per-kind fault counters merged over all trials.
    pub fn fault_totals(&self) -> FaultCounters {
        let mut totals = FaultCounters::new();
        for t in &self.trials {
            totals.merge(&t.fault_counts);
        }
        totals
    }

    /// Serializes the report as a JSON object (`schema: "enerj-campaign/4"`,
    /// which moves storage accounting and energy totals to exact integer
    /// quanta; the `/1`–`/3` schemas are superseded — see DESIGN.md).
    ///
    /// All `*_quanta` values are raw integers (no exponent notation), so a
    /// byte-level comparison of those fields across reports is an exact
    /// comparison of the underlying `u128` totals.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 256 * self.trials.len());
        out.push_str("{\"schema\":\"enerj-campaign/4\"");
        out.push_str(&format!(",\"threads\":{}", self.threads));
        out.push_str(&format!(",\"wall_seconds\":{:.6}", self.wall.as_secs_f64()));
        out.push_str(&format!(",\"mean_error\":{}", json_f64(self.mean_error())));
        out.push_str(&format!(",\"panics\":{}", self.panic_count()));
        out.push_str(&format!(",\"recovered\":{}", self.recovered_count()));
        out.push_str(&format!(
            ",\"recovery_energy_overhead_quanta\":{}",
            self.recovery_energy_overhead()
        ));
        out.push_str(",\"energy_quanta\":");
        out.push_str(&energy_quanta_json(&self.energy_quanta_totals()));
        out.push_str(",\"merged_stats\":");
        out.push_str(&stats_json(&self.merged_stats));
        out.push_str(",\"fault_totals\":");
        out.push_str(&counters_json(&self.fault_totals()));
        out.push_str(",\"trials\":[");
        for (i, t) in self.trials.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let causes: Vec<String> = t.failure_causes.iter().map(|c| json_string(c)).collect();
            out.push_str(&format!(
                "{{\"index\":{},\"app\":{},\"label\":{},\"seed\":{},\"error\":{},\
                 \"wall_seconds\":{:.6},\"panic\":{},\"attempts\":{},\
                 \"recovered_at_level\":{},\"failure_causes\":[{}],\
                 \"recovery_energy_overhead\":{},\
                 \"recovery_energy_overhead_quanta\":{},\"stats\":{},\
                 \"energy\":{},\"energy_quanta\":{},\"fault_counts\":{}}}",
                t.index,
                json_string(t.app),
                json_string(&t.label),
                t.seed,
                json_f64(t.error),
                t.wall.as_secs_f64(),
                match &t.panic {
                    Some(msg) => json_string(msg),
                    None => "null".to_owned(),
                },
                t.attempts,
                match &t.recovered_at_level {
                    Some(level) => json_string(level),
                    None => "null".to_owned(),
                },
                causes.join(","),
                json_f64(t.recovery_energy_overhead),
                t.recovery_energy_overhead_quanta,
                stats_json(&t.stats),
                energy_json(&t.energy),
                energy_quanta_json(&t.energy_quanta),
                counters_json(&t.fault_counts),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Writes [`to_json`](Self::to_json) (plus a trailing newline) to `path`,
    /// creating parent directories as needed.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Serializes the collected fault events as NDJSON: one object per
    /// injected fault, in trial-index then injection order. Empty unless
    /// the campaign ran with [`CampaignOptions::log_events`].
    pub fn fault_log_ndjson(&self) -> String {
        let mut out = String::new();
        for t in &self.trials {
            for e in &t.events {
                out.push_str(&format!(
                    "{{\"trial\":{},\"app\":{},\"label\":{},\"seed\":{},\"time\":{},\
                     \"unit\":{},\"width\":{},\"bits_flipped\":{}}}\n",
                    t.index,
                    json_string(t.app),
                    json_string(&t.label),
                    t.seed,
                    json_f64(e.time),
                    json_string(&e.kind.to_string()),
                    e.width,
                    e.bits_flipped,
                ));
            }
        }
        out
    }

    /// Writes [`fault_log_ndjson`](Self::fault_log_ndjson) to `path`,
    /// creating parent directories as needed.
    pub fn write_fault_log(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.fault_log_ndjson())
    }
}

fn mean_in_order<'a>(trials: impl Iterator<Item = &'a TrialResult>) -> f64 {
    let mut total = 0.0;
    let mut n = 0u64;
    for t in trials {
        total += t.error;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity literals; clamp them to the error scale's ends.
fn json_f64(x: f64) -> String {
    if x.is_nan() {
        "1.0".to_owned()
    } else if x.is_infinite() {
        if x > 0.0 {
            "1e308".to_owned()
        } else {
            "-1e308".to_owned()
        }
    } else {
        format!("{x}")
    }
}

fn stats_json(s: &Stats) -> String {
    format!(
        "{{\"int_approx_ops\":{},\"int_precise_ops\":{},\"fp_approx_ops\":{},\
         \"fp_precise_ops\":{},\"sram_approx_quanta\":{},\
         \"sram_precise_quanta\":{},\"dram_approx_quanta\":{},\
         \"dram_precise_quanta\":{},\"faults_injected\":{}}}",
        s.int_approx_ops,
        s.int_precise_ops,
        s.fp_approx_ops,
        s.fp_precise_ops,
        s.sram_approx_quanta,
        s.sram_precise_quanta,
        s.dram_approx_quanta,
        s.dram_precise_quanta,
        s.faults_injected,
    )
}

fn energy_quanta_json(q: &EnergyQuantaBreakdown) -> String {
    format!(
        "{{\"instructions\":{},\"baseline_instructions\":{},\"sram\":{},\
         \"baseline_sram\":{},\"dram\":{},\"baseline_dram\":{},\"total\":{},\
         \"baseline_total\":{}}}",
        q.instructions,
        q.baseline_instructions,
        q.sram,
        q.baseline_sram,
        q.dram,
        q.baseline_dram,
        q.total,
        q.baseline_total,
    )
}

fn energy_json(e: &EnergyBreakdown) -> String {
    format!(
        "{{\"instructions\":{},\"sram\":{},\"dram\":{},\"total\":{}}}",
        json_f64(e.instructions),
        json_f64(e.sram),
        json_f64(e.dram),
        json_f64(e.total),
    )
}

fn counters_json(c: &FaultCounters) -> String {
    let mut out = String::from("{");
    for (i, (kind, kc)) in c.per_kind().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{kind}\":{{\"injections\":{},\"bits_flipped\":{}}}",
            kc.injections, kc.bits_flipped
        ));
    }
    out.push('}');
    out
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// How to run a campaign: worker count plus telemetry switches.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads (`0` means [`default_threads`]).
    pub threads: usize,
    /// Collect the structured fault log on every trial (the per-kind
    /// counters are always collected). Never changes trial outcomes.
    pub log_events: bool,
    /// Print live progress (trials done, panics, ETA) on stderr.
    pub progress: bool,
}

impl CampaignOptions {
    /// Options with an explicit thread count and telemetry off.
    pub fn with_threads(threads: usize) -> Self {
        CampaignOptions { threads, ..CampaignOptions::default() }
    }
}

/// Live progress meter shared across workers. Printing is throttled to
/// ~20 updates per campaign and never touches trial state.
struct Progress {
    enabled: bool,
    total: usize,
    every: usize,
    done: AtomicUsize,
    panics: AtomicUsize,
    start: Instant,
}

impl Progress {
    fn new(total: usize, enabled: bool, start: Instant) -> Self {
        Progress {
            enabled,
            total,
            every: (total / 20).max(1),
            done: AtomicUsize::new(0),
            panics: AtomicUsize::new(0),
            start,
        }
    }

    fn tick(&self, panicked: bool) {
        if panicked {
            self.panics.fetch_add(1, Ordering::Relaxed);
        }
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled || (!done.is_multiple_of(self.every) && done != self.total) {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = if done == 0 { 0.0 } else { elapsed / done as f64 * (self.total - done) as f64 };
        eprintln!(
            "campaign: {done}/{} trials, {} panic(s), ETA {eta:.1}s",
            self.total,
            self.panics.load(Ordering::Relaxed),
        );
    }
}

/// Runs one trial, catching panics from fault-corrupted executions.
/// Recovery-enabled specs go through [`run_recovered_trial`] instead.
fn run_trial(index: usize, spec: &TrialSpec, log_events: bool) -> TrialResult {
    if let Some(policy) = &spec.recovery {
        return run_recovered_trial(index, spec, policy, log_events);
    }
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let m = harness::measure_with_telemetry(&spec.app, spec.cfg, spec.seed, log_events);
        let error = match &spec.reference {
            Some(reference) => output_error(spec.app.meta.metric, reference, &m.output),
            None => 0.0,
        };
        (m, error)
    }));
    let wall = start.elapsed();
    match outcome {
        Ok((m, error)) => TrialResult {
            index,
            app: spec.app.meta.name,
            label: spec.label.clone(),
            seed: spec.seed,
            error,
            output: spec.keep_output.then_some(m.output),
            stats: m.stats,
            energy: m.energy,
            energy_quanta: m.energy_quanta,
            wall,
            panic: None,
            fault_counts: m.fault_counts,
            events: m.events,
            attempts: 1,
            recovered_at_level: None,
            failure_causes: Vec::new(),
            recovery_energy_overhead: 0.0,
            recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
        },
        Err(payload) => {
            let msg = enerj_core::panic_message(payload.as_ref());
            TrialResult {
                index,
                app: spec.app.meta.name,
                label: spec.label.clone(),
                seed: spec.seed,
                // The paper's protocol: a crashed run delivers worst-case
                // quality and claims no savings over the precise baseline.
                error: 1.0,
                output: None,
                stats: Stats::new(),
                energy: EnergyBreakdown { instructions: 1.0, sram: 1.0, dram: 1.0, total: 1.0 },
                energy_quanta: EnergyQuantaBreakdown::ZERO,
                wall,
                failure_causes: vec![format!("panic: {msg}")],
                panic: Some(msg),
                fault_counts: FaultCounters::new(),
                events: Vec::new(),
                attempts: 1,
                recovered_at_level: None,
                recovery_energy_overhead: 0.0,
                recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
            }
        }
    }
}

/// Runs one trial under its spec's recovery policy. The recovery runner
/// already contains app panics and watchdog trips per attempt; the outer
/// `catch_unwind` only guards against harness bugs (a panicking checker or
/// QoS metric), scored like a plain crashed trial.
fn run_recovered_trial(
    index: usize,
    spec: &TrialSpec,
    policy: &recovery::Policy,
    log_events: bool,
) -> TrialResult {
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        recovery::run_with_recovery(
            &spec.app,
            spec.cfg,
            spec.seed,
            policy,
            spec.reference.as_deref(),
            log_events,
        )
    }));
    let wall = start.elapsed();
    match outcome {
        Ok(r) => {
            // An unrecovered trial whose last attempt panicked keeps the
            // plain-trial contract: `panic` is set. Failures the ladder
            // recovered from live in `failure_causes` only.
            let panic = match (r.output.is_none(), r.failure_causes.last()) {
                (true, Some(recovery::FailureCause::Panic(msg))) => Some(msg.clone()),
                _ => None,
            };
            TrialResult {
                index,
                app: spec.app.meta.name,
                label: spec.label.clone(),
                seed: spec.seed,
                error: r.error,
                output: if spec.keep_output { r.output } else { None },
                stats: r.stats,
                energy: r.energy,
                energy_quanta: r.energy_quanta,
                wall,
                panic,
                fault_counts: r.fault_counts,
                events: r.events,
                attempts: r.attempts,
                recovered_at_level: r.recovered_at.map(|rung| rung.to_string()),
                failure_causes: r.failure_causes.iter().map(|c| c.to_string()).collect(),
                recovery_energy_overhead: r.recovery_energy_overhead,
                recovery_energy_overhead_quanta: r.recovery_energy_overhead_quanta,
            }
        }
        Err(payload) => {
            let msg = enerj_core::panic_message(payload.as_ref());
            TrialResult {
                index,
                app: spec.app.meta.name,
                label: spec.label.clone(),
                seed: spec.seed,
                error: 1.0,
                output: None,
                stats: Stats::new(),
                energy: EnergyBreakdown { instructions: 1.0, sram: 1.0, dram: 1.0, total: 1.0 },
                energy_quanta: EnergyQuantaBreakdown::ZERO,
                wall,
                failure_causes: vec![format!("panic: {msg}")],
                panic: Some(msg),
                fault_counts: FaultCounters::new(),
                events: Vec::new(),
                attempts: 1,
                recovered_at_level: None,
                recovery_energy_overhead: 0.0,
                recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
            }
        }
    }
}

/// Runs every spec, fanning trials across `threads` workers (`0` means
/// [`default_threads`]). Results and all aggregates are bit-identical for
/// any thread count.
pub fn run_campaign(specs: &[TrialSpec], threads: usize) -> CampaignReport {
    run_campaign_with(specs, &CampaignOptions::with_threads(threads))
}

/// [`run_campaign`] with explicit [`CampaignOptions`]. Telemetry switches
/// never change trial outcomes: errors, statistics and energy are
/// bit-identical for any option combination and thread count.
pub fn run_campaign_with(specs: &[TrialSpec], opts: &CampaignOptions) -> CampaignReport {
    let start = Instant::now();
    let threads = if opts.threads == 0 { default_threads() } else { opts.threads };
    let threads = threads.min(specs.len()).max(1);
    let progress = Progress::new(specs.len(), opts.progress, start);
    let log_events = opts.log_events;

    let trials: Vec<TrialResult> = if threads <= 1 {
        specs
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let r = run_trial(i, s, log_events);
                progress.tick(r.panicked());
                r
            })
            .collect()
    } else {
        // One pre-claimed slot per trial: workers pull the next index from
        // a shared counter, so results land at their spec's position no
        // matter which worker ran them or in what order they finished.
        let slots: Vec<Mutex<Option<TrialResult>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let result = run_trial(i, &specs[i], log_events);
                    progress.tick(result.panicked());
                    *slots[i].lock().expect("unpoisoned slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("unpoisoned slot").expect("every slot was claimed")
            })
            .collect()
    };

    // Aggregate serially, in trial-index order, for bit-exact determinism.
    let mut merged_stats = Stats::new();
    for t in &trials {
        if !t.panicked() {
            merged_stats.merge(&t.stats);
        }
    }
    CampaignReport { trials, merged_stats, wall: start.elapsed(), threads }
}

/// The Figure 5 protocol as one campaign: per app, a fault-free reference,
/// then `runs` fault-injection trials at each level (seeds
/// `FAULT_SEED_BASE ^ i`, labels the level names). References are
/// themselves collected in a parallel campaign first.
pub fn run_level_campaign(
    apps: &[App],
    levels: &[Level],
    runs: u64,
    threads: usize,
) -> CampaignReport {
    run_level_campaign_with(apps, levels, runs, &CampaignOptions::with_threads(threads))
}

/// [`run_level_campaign`] with explicit [`CampaignOptions`]; references are
/// always collected without the fault log (they inject no faults).
pub fn run_level_campaign_with(
    apps: &[App],
    levels: &[Level],
    runs: u64,
    opts: &CampaignOptions,
) -> CampaignReport {
    let ref_specs: Vec<TrialSpec> = apps.iter().map(TrialSpec::reference).collect();
    let references = run_campaign(&ref_specs, opts.threads);
    let mut specs = Vec::with_capacity(apps.len() * levels.len() * runs as usize);
    for (app, r) in apps.iter().zip(&references.trials) {
        assert!(!r.panicked(), "{}: reference (fault-free) run panicked", app.meta.name);
        let reference = Arc::new(r.output.clone().expect("reference trials keep their output"));
        for level in levels {
            for i in 0..runs {
                specs.push(TrialSpec::scored(
                    app,
                    level.to_string(),
                    HwConfig::for_level(*level),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                ));
            }
        }
    }
    run_campaign_with(&specs, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_apps;

    fn app(name: &str) -> App {
        all_apps().into_iter().find(|a| a.meta.name == name).expect("registered")
    }

    #[test]
    fn empty_campaign_is_well_defined() {
        let report = run_campaign(&[], 4);
        assert_eq!(report.trials.len(), 0);
        assert_eq!(report.mean_error(), 0.0);
        assert_eq!(report.merged_stats, Stats::new());
    }

    #[test]
    fn reference_trials_score_zero_and_keep_output() {
        let specs: Vec<TrialSpec> = all_apps().iter().take(3).map(TrialSpec::reference).collect();
        let report = run_campaign(&specs, 2);
        for t in &report.trials {
            assert_eq!(t.error, 0.0, "{}", t.app);
            assert!(t.output.is_some(), "{}", t.app);
            assert!(!t.panicked());
        }
    }

    #[test]
    fn results_keep_spec_order() {
        let mc = app("MonteCarlo");
        let reference = Arc::new(harness::reference(&mc).output);
        let specs: Vec<TrialSpec> = (0..8)
            .map(|i| {
                TrialSpec::scored(
                    &mc,
                    "Medium",
                    HwConfig::for_level(Level::Medium),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
            })
            .collect();
        let report = run_campaign(&specs, 4);
        for (i, t) in report.trials.iter().enumerate() {
            assert_eq!(t.index, i);
            assert_eq!(t.seed, FAULT_SEED_BASE ^ i as u64);
        }
    }

    #[test]
    fn json_report_has_schema_and_trials() {
        let specs = vec![TrialSpec::reference(&app("MonteCarlo"))];
        let report = run_campaign(&specs, 1);
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"enerj-campaign/4\""));
        assert!(json.contains("\"app\":\"MonteCarlo\""));
        assert!(json.contains("\"merged_stats\""));
        assert!(json.contains("\"panic\":null"));
        assert!(json.contains("\"fault_totals\""));
        assert!(json.contains("\"fault_counts\""));
        assert!(json.contains("\"sram-read-upset\""));
        assert!(json.contains("\"recovered\":0"));
        assert!(json.contains("\"attempts\":1"));
        assert!(json.contains("\"recovered_at_level\":null"));
        assert!(json.contains("\"failure_causes\":[]"));
        assert!(json.contains("\"recovery_energy_overhead\":0"));
        assert!(json.contains("\"recovery_energy_overhead_quanta\":0"));
        assert!(json.contains("\"energy_quanta\":{\"instructions\":"));
        assert!(json.contains("\"baseline_total\":"));
        assert!(json.contains("\"sram_approx_quanta\":"));
        // Quanta serialize as raw integers: no sign, exponent or dot.
        let field = json.split("\"sram_precise_quanta\":").nth(1).expect("field present");
        let value: String = field.chars().take_while(|c| c.is_ascii_digit()).collect();
        assert!(!value.is_empty());
        assert_eq!(value.parse::<u128>().unwrap(), report.merged_stats.sram_precise_quanta.get());
    }

    #[test]
    fn recovery_specs_escalate_and_report_in_the_campaign() {
        use crate::recovery::{chaos_config, Policy};
        let mc = app("MonteCarlo");
        let reference = Arc::new(harness::reference(&mc).output);
        // Threshold 0 forces every faulted trial down the ladder; the
        // Precise backstop reproduces the reference, so error ends at 0.
        let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
        let specs: Vec<TrialSpec> = (0..4)
            .map(|i| {
                TrialSpec::scored(
                    &mc,
                    "chaos",
                    chaos_config(50.0),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
                .with_recovery(policy.clone())
            })
            .collect();
        let report = run_campaign(&specs, 2);
        assert!(report.recovered_count() > 0, "50x chaos at threshold 0 must escalate");
        assert!(report.recovery_energy_overhead() > EnergyQuanta::ZERO);
        for t in &report.trials {
            if t.recovered() {
                assert!(t.attempts >= 2);
                assert!(!t.failure_causes.is_empty());
                assert!(!t.panicked(), "recovered trials are not crashes");
            }
            assert!(t.error <= f64::EPSILON, "trial {}: error {}", t.index, t.error);
        }
        let json = report.to_json();
        assert!(
            json.contains("\"recovered_at_level\":\"Precise\"")
                || json.contains("\"recovered_at_level\":\"Mild\"")
        );
        assert!(
            json.contains("\"failure_causes\":[\"qos:")
                || json.contains("\"failure_causes\":[\"check:")
                || json.contains("\"failure_causes\":[\"panic:")
        );
    }

    #[test]
    fn recovery_campaigns_are_bit_identical_across_thread_counts() {
        use crate::recovery::{chaos_config, Policy};
        let apps = [app("SOR"), app("MonteCarlo")];
        let policy = Policy { qos_threshold: Some(0.01), ..Policy::standard() };
        let specs: Vec<TrialSpec> = apps
            .iter()
            .flat_map(|a| {
                let reference = Arc::new(harness::reference(a).output);
                let policy = policy.clone();
                (0..3).map(move |i| {
                    TrialSpec::scored(
                        a,
                        "chaos",
                        chaos_config(25.0),
                        FAULT_SEED_BASE ^ i,
                        Arc::clone(&reference),
                    )
                    .with_recovery(policy.clone())
                })
            })
            .collect();
        let digest = |r: &CampaignReport| {
            r.trials
                .iter()
                .map(|t| {
                    (
                        t.error.to_bits(),
                        t.attempts,
                        t.recovered_at_level.clone(),
                        t.failure_causes.clone(),
                        t.energy.total.to_bits(),
                        t.recovery_energy_overhead.to_bits(),
                        t.energy_quanta,
                        t.recovery_energy_overhead_quanta,
                        t.stats,
                    )
                })
                .collect::<Vec<_>>()
        };
        let base = digest(&run_campaign(&specs, 1));
        for threads in [2, 4, 8] {
            assert_eq!(digest(&run_campaign(&specs, threads)), base, "{threads} threads");
        }
        // Telemetry must not perturb recovery outcomes either.
        let opts = CampaignOptions { threads: 4, log_events: true, progress: false };
        assert_eq!(digest(&run_campaign_with(&specs, &opts)), base, "with fault log");
    }

    /// Satellite of the quanta refactor: the accounting identity
    /// `accepted-attempt energy + recovery overhead == trial energy` holds
    /// *exactly* — asserted with `==` on `u128` quanta, no epsilon — for
    /// every trial of a chaos campaign, with the accepted attempt's energy
    /// recomputed by an independent replay rather than read back from the
    /// report.
    #[test]
    fn trial_energy_decomposes_exactly_into_accepted_attempt_plus_overhead() {
        use crate::recovery::{chaos_config, retry_seed, Policy, Rung};
        let mc = app("MonteCarlo");
        let reference = Arc::new(harness::reference(&mc).output);
        let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
        let chaos = chaos_config(50.0);
        let specs: Vec<TrialSpec> = (0..6)
            .map(|i| {
                TrialSpec::scored(&mc, "chaos", chaos, FAULT_SEED_BASE ^ i, Arc::clone(&reference))
                    .with_recovery(policy.clone())
            })
            .collect();
        let report = run_campaign(&specs, 4);
        assert!(report.recovered_count() > 0, "50x chaos at threshold 0 must escalate");
        for t in &report.trials {
            // Exact decomposition: subtraction round-trips in u128.
            let accepted = t.energy_quanta.total - t.recovery_energy_overhead_quanta;
            assert_eq!(accepted + t.recovery_energy_overhead_quanta, t.energy_quanta.total);
            if t.panicked() || (t.recovered_at_level.is_none() && t.attempts > 1) {
                continue; // no accepted attempt to replay
            }
            // Replay the accepted attempt from its spec alone.
            let (cfg, seed) = match &t.recovered_at_level {
                None => (chaos, t.seed),
                Some(name) => {
                    let rung = if name == "Precise" {
                        Rung::Precise
                    } else {
                        let level = *Level::ALL
                            .iter()
                            .find(|l| &l.to_string() == name)
                            .expect("rung name is a Table 2 level");
                        Rung::Level(level)
                    };
                    (rung.config(), retry_seed(t.seed, t.attempts - 1))
                }
            };
            let replay = harness::measure_with(&mc, cfg, seed);
            assert_eq!(
                replay.energy_quanta.total, accepted,
                "trial {}: accepted-attempt energy must replay exactly",
                t.index
            );
        }
        // The same identity at campaign scale, summed in any order.
        let total: EnergyQuanta = report.trials.iter().map(|t| t.energy_quanta.total).sum();
        let accepted: EnergyQuanta = report
            .trials
            .iter()
            .map(|t| t.energy_quanta.total - t.recovery_energy_overhead_quanta)
            .sum();
        assert_eq!(accepted + report.recovery_energy_overhead(), total);
    }

    #[test]
    fn fault_log_lines_match_injected_faults() {
        let mc = app("MonteCarlo");
        let reference = Arc::new(harness::reference(&mc).output);
        let specs: Vec<TrialSpec> = (0..4)
            .map(|i| {
                TrialSpec::scored(
                    &mc,
                    "Aggressive",
                    HwConfig::for_level(Level::Aggressive),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
            })
            .collect();
        let opts = CampaignOptions { threads: 2, log_events: true, progress: false };
        let report = run_campaign_with(&specs, &opts);
        let totals = report.fault_totals();
        assert!(totals.total_injections() > 0, "aggressive MonteCarlo injects faults");
        let ndjson = report.fault_log_ndjson();
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len() as u64, totals.total_injections());
        for line in &lines {
            assert!(line.starts_with("{\"trial\":"));
            assert!(line.contains("\"unit\":"));
            assert!(line.contains("\"width\":"));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn json_escaping_and_nonfinite_numbers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(f64::NAN), "1.0");
        assert_eq!(json_f64(f64::INFINITY), "1e308");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn level_campaign_matches_serial_mean_error() {
        let apps = [app("MonteCarlo")];
        let report = run_level_campaign(&apps, &[Level::Mild], 3, 2);
        let serial = harness::mean_output_error(&apps[0], Level::Mild, 3);
        let parallel = report.mean_error_for("MonteCarlo", "Mild");
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    /// One chaos-recovery campaign per thread count in {1, 2, 4, 8},
    /// computed once and shared across proptest cases.
    fn shared_thread_reports() -> &'static Vec<(usize, CampaignReport)> {
        use std::sync::OnceLock;
        static REPORTS: OnceLock<Vec<(usize, CampaignReport)>> = OnceLock::new();
        REPORTS.get_or_init(|| {
            use crate::recovery::{chaos_config, Policy};
            let mc = app("MonteCarlo");
            let reference = Arc::new(harness::reference(&mc).output);
            let policy = Policy { qos_threshold: Some(0.01), ..Policy::standard() };
            let specs: Vec<TrialSpec> = (0..4)
                .map(|i| {
                    TrialSpec::scored(
                        &mc,
                        "chaos",
                        chaos_config(25.0),
                        FAULT_SEED_BASE ^ i,
                        Arc::clone(&reference),
                    )
                    .with_recovery(policy.clone())
                })
                .collect();
            [1usize, 2, 4, 8].iter().map(|&t| (t, run_campaign(&specs, t))).collect()
        })
    }

    /// Deterministic Fisher–Yates driven by a SplitMix64 stream.
    fn shuffle<T>(items: &mut [T], mut seed: u64) {
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..items.len()).rev() {
            items.swap(i, (next() % (i as u64 + 1)) as usize);
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// Satellite of the quanta refactor: shuffle the trial merge order
        /// *and* the thread count — every campaign energy total (per-pool
        /// stats quanta, the energy breakdown, and the recovery overhead)
        /// is bit-identical, asserted with `==` on the integers.
        #[test]
        fn campaign_energy_totals_are_order_and_thread_independent(
            seed: u64,
            threads in proptest::sample::select(vec![1usize, 2, 4, 8]),
        ) {
            let reports = shared_thread_reports();
            let base = &reports[0].1;
            let report =
                &reports.iter().find(|(t, _)| *t == threads).expect("precomputed").1;

            // Thread count cannot perturb any total.
            prop_assert_eq!(report.energy_quanta_totals(), base.energy_quanta_totals());
            prop_assert_eq!(report.recovery_energy_overhead(), base.recovery_energy_overhead());
            prop_assert_eq!(report.merged_stats, base.merged_stats);

            // Neither can merge order: fold the trials in a shuffled order
            // and compare whole-struct equality against the in-order totals.
            let mut order: Vec<usize> = (0..report.trials.len()).collect();
            shuffle(&mut order, seed);
            let mut energy = EnergyQuantaBreakdown::ZERO;
            let mut overhead = EnergyQuanta::ZERO;
            let mut stats = Stats::new();
            for &i in &order {
                energy.merge(&report.trials[i].energy_quanta);
                overhead += report.trials[i].recovery_energy_overhead_quanta;
                stats.merge(&report.trials[i].stats);
            }
            prop_assert_eq!(energy, base.energy_quanta_totals());
            prop_assert_eq!(overhead, base.recovery_energy_overhead());
            prop_assert_eq!(stats, base.merged_stats);
        }
    }
}
