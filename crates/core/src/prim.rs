//! Primitive types that can carry the `@Approx` qualifier.
//!
//! EnerJ qualifies Java's primitive types; the Rust embedding does the same
//! via the sealed [`ApproxPrim`] trait, which knows how to move a value
//! through the simulated hardware: its bit pattern, its width, and which
//! functional unit executes operations on it.

use enerj_hw::stats::OpKind;
use enerj_hw::Hardware;

mod sealed {
    pub trait Sealed {}
    impl Sealed for i8 {}
    impl Sealed for i16 {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
    impl Sealed for bool {}
}

/// A primitive type that may be qualified `@Approx`.
///
/// This trait is sealed: the set of qualifiable primitives is fixed by the
/// language, exactly as in EnerJ.
pub trait ApproxPrim: Copy + PartialEq + std::fmt::Debug + sealed::Sealed + 'static {
    /// Width of the value in bits as stored in simulated hardware.
    const WIDTH: u32;
    /// Which functional unit operates on this type.
    const OP_KIND: OpKind;

    /// The value's raw bit pattern, zero-extended to 64 bits.
    fn to_bits64(self) -> u64;

    /// Reconstructs a value from the low [`Self::WIDTH`] bits of `bits`.
    fn from_bits64(bits: u64) -> Self;

    /// Applies operand conditioning for approximate execution (mantissa
    /// width reduction for floats; identity for integers).
    fn condition_operand(hw: &Hardware, x: Self) -> Self {
        let _ = hw;
        x
    }

    /// Routes a raw result through the approximate functional unit,
    /// counting the operation and possibly injecting a timing error.
    fn unit_result(hw: &mut Hardware, raw: Self) -> Self;
}

macro_rules! impl_int_prim {
    ($($t:ty => $w:expr),* $(,)?) => {$(
        impl ApproxPrim for $t {
            const WIDTH: u32 = $w;
            const OP_KIND: OpKind = OpKind::Int;

            #[allow(clippy::cast_sign_loss)]
            fn to_bits64(self) -> u64 {
                // Zero-extend the two's-complement pattern.
                (self as u64) & enerj_hw::fault::low_mask($w)
            }

            #[allow(clippy::cast_possible_truncation)]
            fn from_bits64(bits: u64) -> Self {
                bits as $t
            }

            fn unit_result(hw: &mut Hardware, raw: Self) -> Self {
                Self::from_bits64(hw.approx_int_result(raw.to_bits64(), $w))
            }
        }
    )*};
}

impl_int_prim! {
    i8 => 8, i16 => 16, i32 => 32, i64 => 64,
    u8 => 8, u16 => 16, u32 => 32, u64 => 64,
}

impl ApproxPrim for f32 {
    const WIDTH: u32 = 32;
    const OP_KIND: OpKind = OpKind::Fp;

    fn to_bits64(self) -> u64 {
        u64::from(self.to_bits())
    }

    #[allow(clippy::cast_possible_truncation)]
    fn from_bits64(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }

    fn condition_operand(hw: &Hardware, x: Self) -> Self {
        hw.approx_f32_operand(x)
    }

    fn unit_result(hw: &mut Hardware, raw: Self) -> Self {
        hw.approx_f32_result(raw)
    }
}

impl ApproxPrim for f64 {
    const WIDTH: u32 = 64;
    const OP_KIND: OpKind = OpKind::Fp;

    fn to_bits64(self) -> u64 {
        self.to_bits()
    }

    fn from_bits64(bits: u64) -> Self {
        f64::from_bits(bits)
    }

    fn condition_operand(hw: &Hardware, x: Self) -> Self {
        hw.approx_f64_operand(x)
    }

    fn unit_result(hw: &mut Hardware, raw: Self) -> Self {
        hw.approx_f64_result(raw)
    }
}

impl ApproxPrim for bool {
    const WIDTH: u32 = 1;
    const OP_KIND: OpKind = OpKind::Int;

    fn to_bits64(self) -> u64 {
        u64::from(self)
    }

    fn from_bits64(bits: u64) -> Self {
        bits & 1 == 1
    }

    fn unit_result(hw: &mut Hardware, raw: Self) -> Self {
        Self::from_bits64(hw.approx_int_result(raw.to_bits64(), 1))
    }
}

/// Approximate arithmetic semantics: the operations an imprecise functional
/// unit implements for a type.
///
/// Approximate operations never trap (section 5.2): integer arithmetic wraps
/// and divides-by-zero yield 0; floating-point divides-by-zero yield NaN.
pub trait ApproxArith: ApproxPrim {
    /// Approximate addition (wrapping for integers).
    fn approx_add(a: Self, b: Self) -> Self;
    /// Approximate subtraction (wrapping for integers).
    fn approx_sub(a: Self, b: Self) -> Self;
    /// Approximate multiplication (wrapping for integers).
    fn approx_mul(a: Self, b: Self) -> Self;
    /// Approximate division: integer x/0 = 0, float x/0 = NaN.
    fn approx_div(a: Self, b: Self) -> Self;
    /// Approximate remainder: integer x%0 = 0, float x%0 = NaN.
    fn approx_rem(a: Self, b: Self) -> Self;
    /// Approximate negation.
    fn approx_neg(a: Self) -> Self;
}

macro_rules! impl_int_arith {
    ($($t:ty),* $(,)?) => {$(
        impl ApproxArith for $t {
            fn approx_add(a: Self, b: Self) -> Self { a.wrapping_add(b) }
            fn approx_sub(a: Self, b: Self) -> Self { a.wrapping_sub(b) }
            fn approx_mul(a: Self, b: Self) -> Self { a.wrapping_mul(b) }
            fn approx_div(a: Self, b: Self) -> Self {
                if b == 0 { 0 } else { a.wrapping_div(b) }
            }
            fn approx_rem(a: Self, b: Self) -> Self {
                if b == 0 { 0 } else { a.wrapping_rem(b) }
            }
            fn approx_neg(a: Self) -> Self { a.wrapping_neg() }
        }
    )*};
}

impl_int_arith!(i8, i16, i32, i64, u8, u16, u32, u64);

/// Approximate bitwise semantics: shifts and logical operations on the
/// integer unit. Shift amounts are masked to the type width, as hardware
/// shifters do, so approximate shifts never trap.
pub trait ApproxBits: ApproxPrim {
    /// Bitwise AND.
    fn approx_and(a: Self, b: Self) -> Self;
    /// Bitwise OR.
    fn approx_or(a: Self, b: Self) -> Self;
    /// Bitwise XOR.
    fn approx_xor(a: Self, b: Self) -> Self;
    /// Left shift, amount masked to the width.
    fn approx_shl(a: Self, amount: u32) -> Self;
    /// Logical/arithmetic right shift (per the type), amount masked.
    fn approx_shr(a: Self, amount: u32) -> Self;
}

macro_rules! impl_int_bits {
    ($($t:ty),* $(,)?) => {$(
        impl ApproxBits for $t {
            fn approx_and(a: Self, b: Self) -> Self { a & b }
            fn approx_or(a: Self, b: Self) -> Self { a | b }
            fn approx_xor(a: Self, b: Self) -> Self { a ^ b }
            fn approx_shl(a: Self, amount: u32) -> Self {
                a.wrapping_shl(amount)
            }
            fn approx_shr(a: Self, amount: u32) -> Self {
                a.wrapping_shr(amount)
            }
        }
    )*};
}

impl_int_bits!(i8, i16, i32, i64, u8, u16, u32, u64);

macro_rules! impl_fp_arith {
    ($($t:ty),* $(,)?) => {$(
        impl ApproxArith for $t {
            fn approx_add(a: Self, b: Self) -> Self { a + b }
            fn approx_sub(a: Self, b: Self) -> Self { a - b }
            fn approx_mul(a: Self, b: Self) -> Self { a * b }
            fn approx_div(a: Self, b: Self) -> Self {
                if b == 0.0 { <$t>::NAN } else { a / b }
            }
            fn approx_rem(a: Self, b: Self) -> Self {
                if b == 0.0 { <$t>::NAN } else { a % b }
            }
            fn approx_neg(a: Self) -> Self { -a }
        }
    )*};
}

impl_fp_arith!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_bits_roundtrip_including_negatives() {
        for &x in &[0i32, 1, -1, i32::MIN, i32::MAX, 123_456_789] {
            assert_eq!(i32::from_bits64(x.to_bits64()), x);
        }
        for &x in &[0i8, -1, i8::MIN, i8::MAX] {
            assert_eq!(i8::from_bits64(x.to_bits64()), x);
        }
        for &x in &[0u64, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(u64::from_bits64(x.to_bits64()), x);
        }
    }

    #[test]
    fn int_bits_are_confined_to_width() {
        assert_eq!((-1i8).to_bits64(), 0xFF);
        assert_eq!((-1i16).to_bits64(), 0xFFFF);
        assert_eq!((-1i32).to_bits64(), 0xFFFF_FFFF);
    }

    #[test]
    fn float_bits_roundtrip() {
        for &x in &[0.0f64, -0.0, 1.5, f64::INFINITY, f64::MIN_POSITIVE] {
            assert_eq!(f64::from_bits64(x.to_bits64()).to_bits(), x.to_bits());
        }
        assert!(f32::from_bits64(f32::NAN.to_bits64()).is_nan());
    }

    #[test]
    fn bool_roundtrip() {
        assert!(bool::from_bits64(true.to_bits64()));
        assert!(!bool::from_bits64(false.to_bits64()));
    }

    #[test]
    fn approx_int_div_by_zero_is_zero() {
        assert_eq!(i32::approx_div(5, 0), 0);
        assert_eq!(i32::approx_rem(5, 0), 0);
        assert_eq!(u8::approx_div(200, 0), 0);
    }

    #[test]
    fn approx_int_overflow_wraps() {
        assert_eq!(i32::approx_add(i32::MAX, 1), i32::MIN);
        assert_eq!(i8::approx_mul(100, 100), (100i8).wrapping_mul(100));
        assert_eq!(i32::approx_neg(i32::MIN), i32::MIN);
    }

    #[test]
    fn approx_fp_div_by_zero_is_nan() {
        assert!(f32::approx_div(1.0, 0.0).is_nan());
        assert!(f64::approx_rem(1.0, 0.0).is_nan());
        assert!((f64::approx_div(1.0, 2.0) - 0.5).abs() < 1e-15);
    }
}
