//! Approximate and precise heap arrays (sections 2.6 and 4.1).
//!
//! EnerJ programs "often use large arrays of approximate primitive elements;
//! the elements themselves are all approximated and only the length requires
//! precise guarantees." [`ApproxVec<T>`] reproduces this: elements live in
//! simulated DRAM under reduced refresh (decaying over virtual time), the
//! length is precise, and indices are plain `usize` — approximate integers
//! cannot index an array without an endorsement, because `Approx<T>` values
//! do not convert to `usize`.
//!
//! The first cache line of an array (length and type information) is
//! precise; element bytes that share it neither decay nor save energy,
//! exactly as in the paper's layout scheme.
//!
//! [`PreciseVec<T>`] is the instrumented precise counterpart, used by ported
//! applications for heap data that must stay reliable so that DRAM
//! byte-seconds are accounted on both sides of Figure 3.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use crate::approx::Approx;
use crate::precise::Precise;
use crate::prim::ApproxPrim;
use crate::runtime::current_hw;
use enerj_hw::{DramArray, Hardware};

/// A heap array of approximate elements with a precise length.
///
/// # Examples
///
/// ```
/// use enerj_core::{endorse, Approx, ApproxVec, Runtime};
/// use enerj_hw::config::Level;
///
/// let rt = Runtime::new(Level::Mild, 0);
/// rt.run(|| {
///     let mut v = ApproxVec::<f32>::new(64);
///     v.set(3, Approx::new(2.5));
///     let x = endorse(v.get(3));
///     assert!((x - 2.5).abs() < 0.01);
/// });
/// ```
#[derive(Debug)]
pub struct ApproxVec<T: ApproxPrim> {
    dram: DramArray,
    hw: Rc<RefCell<Hardware>>,
    _elem: PhantomData<T>,
}

/// A heap array of precise elements, instrumented for storage statistics.
#[derive(Debug)]
pub struct PreciseVec<T: ApproxPrim> {
    dram: DramArray,
    hw: Rc<RefCell<Hardware>>,
    _elem: PhantomData<T>,
}

/// Fetches the ambient hardware handle or panics with a helpful message.
fn require_hw(what: &str) -> Rc<RefCell<Hardware>> {
    current_hw().unwrap_or_else(|| {
        panic!("{what} requires an installed Runtime; wrap the code in Runtime::run")
    })
}

impl<T: ApproxPrim> ApproxVec<T> {
    /// Allocates `len` zeroed approximate elements in simulated DRAM.
    ///
    /// # Panics
    ///
    /// Panics if no [`Runtime`](crate::Runtime) is installed: heap
    /// approximation is a property of the substrate, so a substrate must be
    /// present.
    pub fn new(len: usize) -> Self {
        let hw = require_hw("ApproxVec");
        let dram = DramArray::new(&mut hw.borrow_mut(), len, T::WIDTH.max(8), true);
        ApproxVec { dram, hw, _elem: PhantomData }
    }

    /// Builds an array by evaluating `f` at every index.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> Approx<T>) -> Self {
        let mut v = ApproxVec::new(len);
        for i in 0..len {
            let x = f(i);
            v.set(i, x);
        }
        v
    }

    /// Copies a precise slice into a fresh approximate array (subtyping:
    /// precise data flows into approximate storage freely).
    pub fn from_slice(data: &[T]) -> Self {
        let mut v = ApproxVec::new(data.len());
        for (i, &x) in data.iter().enumerate() {
            v.set(i, Approx::new(x));
        }
        v
    }

    /// Number of elements. Lengths are always precise (section 2.6).
    pub fn len(&self) -> usize {
        self.dram.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.dram.is_empty()
    }

    /// Reads element `i`. The index must be precise (`usize`), and bounds
    /// are always enforced; the element value may have decayed.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&mut self, i: usize) -> Approx<T> {
        let bits = self.dram.read(&mut self.hw.borrow_mut(), i);
        Approx::from_raw(T::from_bits64(bits))
    }

    /// Writes element `i`, refreshing its decay clock.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: Approx<T>) {
        // Not a semantic endorsement: the bits remain approximate, merely
        // relocated into DRAM without a register-file round trip.
        let bits = value.raw().to_bits64();
        self.dram.write(&mut self.hw.borrow_mut(), i, bits);
    }

    /// Endorses the whole array into a precise `Vec` (a bulk section 2.2
    /// endorsement, as used at output boundaries).
    pub fn endorse_to_vec(&mut self) -> Vec<T> {
        (0..self.len()).map(|i| crate::approx::endorse(self.get(i))).collect()
    }

    /// Bulk DRAM read for the batched path: fills `out` with the raw bit
    /// patterns of `out.len()` elements starting at `start`. Decay and
    /// accounting are identical to an element-by-element read loop.
    pub(crate) fn read_bits_slice(&mut self, start: usize, out: &mut [u64]) {
        self.dram.read_slice(&mut self.hw.borrow_mut(), start, out);
    }

    /// Bulk DRAM write for the batched path, mirroring
    /// [`ApproxVec::read_bits_slice`].
    pub(crate) fn write_bits_slice(&mut self, start: usize, vals: &[u64]) {
        self.dram.write_slice(&mut self.hw.borrow_mut(), start, vals);
    }
}

impl<T: ApproxPrim> Drop for ApproxVec<T> {
    fn drop(&mut self) {
        self.dram.retire(&mut self.hw.borrow_mut());
    }
}

impl<T: ApproxPrim> PreciseVec<T> {
    /// Allocates `len` zeroed precise elements in simulated DRAM.
    ///
    /// # Panics
    ///
    /// Panics if no [`Runtime`](crate::Runtime) is installed.
    pub fn new(len: usize) -> Self {
        let hw = require_hw("PreciseVec");
        let dram = DramArray::new(&mut hw.borrow_mut(), len, T::WIDTH.max(8), false);
        PreciseVec { dram, hw, _elem: PhantomData }
    }

    /// Copies a slice into a fresh precise array.
    pub fn from_slice(data: &[T]) -> Self {
        let mut v = PreciseVec::new(data.len());
        for (i, &x) in data.iter().enumerate() {
            v.set(i, x);
        }
        v
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.dram.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.dram.is_empty()
    }

    /// Reads element `i` reliably.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&mut self, i: usize) -> T {
        T::from_bits64(self.dram.read(&mut self.hw.borrow_mut(), i))
    }

    /// Reads element `i` as an instrumented [`Precise`] value.
    pub fn get_precise(&mut self, i: usize) -> Precise<T> {
        Precise::new(self.get(i))
    }

    /// Writes element `i` reliably.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: T) {
        self.dram.write(&mut self.hw.borrow_mut(), i, value.to_bits64());
    }

    /// Copies the contents into a plain `Vec`.
    pub fn to_vec(&mut self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }
}

impl<T: ApproxPrim> Drop for PreciseVec<T> {
    fn drop(&mut self) {
        self.dram.retire(&mut self.hw.borrow_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::{endorse, Approx};
    use enerj_hw::config::{HwConfig, Level, StrategyMask};
    use enerj_hw::stats::MemKind;

    fn exact_rt() -> Runtime {
        let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
        Runtime::with_config(cfg, 0)
    }

    #[test]
    fn roundtrip_under_masked_runtime() {
        let rt = exact_rt();
        rt.run(|| {
            let mut v = ApproxVec::<i32>::new(100);
            for i in 0..100 {
                v.set(i, Approx::new(i as i32 * 3 - 50));
            }
            for i in 0..100 {
                assert_eq!(endorse(v.get(i)), i as i32 * 3 - 50);
            }
        });
    }

    #[test]
    fn float_elements_roundtrip_bits() {
        let rt = exact_rt();
        rt.run(|| {
            let mut v = ApproxVec::<f64>::new(8);
            v.set(2, Approx::new(-1234.5678e9));
            assert_eq!(endorse(v.get(2)), -1234.5678e9);
        });
    }

    #[test]
    fn from_slice_and_endorse_to_vec() {
        let rt = exact_rt();
        rt.run(|| {
            let data = [1.0f32, 2.5, -3.0];
            let mut v = ApproxVec::from_slice(&data);
            assert_eq!(v.endorse_to_vec(), data);
        });
    }

    #[test]
    fn dram_storage_split_is_accounted_on_drop() {
        let rt = exact_rt();
        rt.run(|| {
            let mut a = ApproxVec::<f64>::new(1000);
            let mut p = PreciseVec::<f64>::new(1000);
            // Touch them so time passes.
            for i in 0..1000 {
                a.set(i, Approx::new(i as f64));
                p.set(i, i as f64);
            }
            drop(a);
            drop(p);
        });
        let s = rt.stats();
        assert!(!s.dram_approx_quanta.is_zero());
        assert!(10 * s.dram_precise_quanta.get() > 9 * s.dram_approx_quanta.get());
        let frac = s.approx_storage_fraction(MemKind::Dram);
        assert!(frac > 0.4 && frac < 0.55, "frac = {frac}");
    }

    #[test]
    fn precise_vec_roundtrip() {
        let rt = exact_rt();
        rt.run(|| {
            let mut v = PreciseVec::<i64>::new(10);
            v.set(9, -42);
            assert_eq!(v.get(9), -42);
            assert_eq!(v.to_vec()[9], -42);
        });
    }

    #[test]
    #[should_panic(expected = "requires an installed Runtime")]
    fn approx_vec_without_runtime_panics() {
        let _ = ApproxVec::<i32>::new(4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_is_always_a_precise_panic() {
        let rt = exact_rt();
        rt.run(|| {
            let mut v = ApproxVec::<i32>::new(4);
            let _ = v.get(4);
        });
    }

    #[test]
    fn bool_elements_use_byte_width() {
        let rt = exact_rt();
        rt.run(|| {
            let mut v = ApproxVec::<bool>::new(16);
            v.set(7, Approx::new(true));
            assert!(endorse(v.get(7)));
            assert!(!endorse(v.get(6)));
        });
    }
}
