//! The `@Precise` qualifier: instrumented precise values.
//!
//! Precise data is the default in EnerJ, and plain Rust values play that
//! role in the embedding. [`Precise<T>`] exists for *accounting*: the
//! paper's simulator instruments every arithmetic operation and memory
//! access, precise or not, to compute the fractions of Figure 3 and the
//! energy of Figure 4. Ported applications therefore route their precise
//! arithmetic through `Precise<T>` so that precise work is counted (and,
//! naturally, never faulted).
//!
//! Unlike [`Approx<T>`](crate::Approx), `Precise<T>` implements `PartialEq`
//! and `PartialOrd` against itself and its inner type: precise data may
//! freely drive control flow (section 2.4).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Rem, RemAssign, Sub, SubAssign,
};

use crate::approx::Approx;
use crate::prim::ApproxPrim;
use crate::runtime::with_hw;

/// A precise value of primitive type `T`, instrumented for statistics.
///
/// # Examples
///
/// ```
/// use enerj_core::{Precise, Runtime};
/// use enerj_hw::config::Level;
///
/// let rt = Runtime::new(Level::Medium, 0);
/// let out = rt.run(|| {
///     let mut acc = Precise::new(0i32);
///     for i in 0..10 {
///         acc += Precise::new(i);
///     }
///     acc.get()
/// });
/// assert_eq!(out, 45);
/// assert_eq!(rt.stats().int_precise_ops, 10);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Precise<T: ApproxPrim>(T);

impl<T: ApproxPrim> Precise<T> {
    /// Wraps a value as precise data. The store is a precise SRAM write:
    /// counted, never faulted.
    pub fn new(value: T) -> Self {
        with_hw(|hw| {
            if let Some(hw) = hw {
                hw.sram_write(value.to_bits64(), T::WIDTH, false);
            }
        });
        Precise(value)
    }

    /// The wrapped value. Reading precise data is reliable and free of
    /// accounting (the accesses were counted when the value was produced).
    pub fn get(self) -> T {
        self.0
    }

    /// Upcasts to the approximate type (primitive subtyping, section 2.1).
    pub fn to_approx(self) -> Approx<T> {
        Approx::new(self.0)
    }
}

impl<T: ApproxPrim> From<T> for Precise<T> {
    fn from(value: T) -> Self {
        Precise::new(value)
    }
}

impl<T: ApproxPrim> From<Precise<T>> for Approx<T> {
    fn from(value: Precise<T>) -> Self {
        value.to_approx()
    }
}

impl<T: ApproxPrim + fmt::Display> fmt::Display for Precise<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

impl<T: ApproxPrim> PartialEq for Precise<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl<T: ApproxPrim> PartialEq<T> for Precise<T> {
    fn eq(&self, other: &T) -> bool {
        self.0 == *other
    }
}

impl<T: ApproxPrim + PartialOrd> PartialOrd for Precise<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

impl<T: ApproxPrim + PartialOrd> PartialOrd<T> for Precise<T> {
    fn partial_cmp(&self, other: &T) -> Option<Ordering> {
        self.0.partial_cmp(other)
    }
}

/// Records one precise operation of `T`'s kind on the ambient hardware,
/// with the same SRAM traffic pattern as an approximate operation: two
/// operand reads on precise (reliable) storage; results are forwarded.
fn count_op<T: ApproxPrim>(a: T, b: T, out: T) {
    let _ = out;
    with_hw(|hw| {
        if let Some(hw) = hw {
            hw.sram_read(a.to_bits64(), T::WIDTH, false);
            hw.sram_read(b.to_bits64(), T::WIDTH, false);
            hw.precise_op(T::OP_KIND);
        }
    });
}

macro_rules! impl_precise_binop {
    ($trait:ident, $method:ident) => {
        impl<T: ApproxPrim + $trait<Output = T>> $trait for Precise<T> {
            type Output = Precise<T>;
            fn $method(self, rhs: Precise<T>) -> Precise<T> {
                let out = self.0.$method(rhs.0);
                count_op::<T>(self.0, rhs.0, out);
                Precise(out)
            }
        }
        impl<T: ApproxPrim + $trait<Output = T>> $trait<T> for Precise<T> {
            type Output = Precise<T>;
            fn $method(self, rhs: T) -> Precise<T> {
                let out = self.0.$method(rhs);
                count_op::<T>(self.0, rhs, out);
                Precise(out)
            }
        }
    };
}

impl_precise_binop!(Add, add);
impl_precise_binop!(Sub, sub);
impl_precise_binop!(Mul, mul);
impl_precise_binop!(Div, div);
impl_precise_binop!(Rem, rem);

macro_rules! impl_precise_assign {
    ($trait:ident, $method:ident, $base:ident, $op:tt) => {
        impl<T: ApproxPrim + $base<Output = T>> $trait for Precise<T> {
            fn $method(&mut self, rhs: Precise<T>) {
                *self = *self $op rhs;
            }
        }
        impl<T: ApproxPrim + $base<Output = T>> $trait<T> for Precise<T> {
            fn $method(&mut self, rhs: T) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_precise_assign!(AddAssign, add_assign, Add, +);
impl_precise_assign!(SubAssign, sub_assign, Sub, -);
impl_precise_assign!(MulAssign, mul_assign, Mul, *);
impl_precise_assign!(DivAssign, div_assign, Div, /);
impl_precise_assign!(RemAssign, rem_assign, Rem, %);

impl<T: ApproxPrim + Neg<Output = T>> Neg for Precise<T> {
    type Output = Precise<T>;
    fn neg(self) -> Precise<T> {
        let out = -self.0;
        count_op::<T>(self.0, self.0, out);
        Precise(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use enerj_hw::config::Level;

    #[test]
    fn precise_ops_are_exact_under_any_level() {
        let rt = Runtime::new(Level::Aggressive, 0);
        let out = rt.run(|| {
            let a = Precise::new(123.25f64);
            let b = Precise::new(4.0f64);
            (a * b + 1.0).get()
        });
        assert_eq!(out, 494.0);
        assert_eq!(rt.stats().faults_injected, 0);
        assert_eq!(rt.stats().fp_precise_ops, 2);
    }

    #[test]
    fn comparisons_drive_control_flow_directly() {
        let a = Precise::new(3i32);
        let b = Precise::new(5i32);
        assert!(a < b);
        assert!(a == 3);
        assert!(b >= 5);
        let branch = if a < b { "lt" } else { "ge" };
        assert_eq!(branch, "lt");
    }

    #[test]
    fn upcast_to_approx_is_available() {
        let p = Precise::new(8i32);
        let a: Approx<i32> = p.into();
        assert_eq!(crate::endorse(a), 8);
    }

    #[test]
    fn works_without_runtime() {
        let x = Precise::new(2i64) * Precise::new(21i64);
        assert_eq!(x.get(), 42);
    }

    #[test]
    fn storage_counts_as_precise_sram() {
        let rt = Runtime::new(Level::Medium, 0);
        rt.run(|| {
            let _ = Precise::new(1.0f32) + Precise::new(2.0f32);
        });
        let s = rt.stats();
        assert!(!s.sram_precise_quanta.is_zero());
        assert!(s.sram_approx_quanta.is_zero());
    }

    #[test]
    fn display_matches_inner() {
        assert_eq!(Precise::new(7i32).to_string(), "7");
    }
}
