//! Approximate math intrinsics.
//!
//! The paper's hardware exposes approximate floating-point *operations*;
//! math-library calls on approximate data should also run on the imprecise
//! unit rather than silently escaping to precise code. These helpers give
//! `Approx<f32>`/`Approx<f64>` the common unary intrinsics: the operand is
//! conditioned (mantissa truncation), the computation is charged as one
//! approximate FP operation, and the result may suffer a timing error —
//! exactly like the arithmetic operators.
//!
//! Boolean connectives for `Approx<bool>` are here too: they run on the
//! integer unit and keep the result approximate, so compound conditions
//! still need a single explicit [`endorse`](crate::endorse) at the end.

use crate::approx::Approx;
use crate::prim::ApproxPrim;
use crate::runtime::with_hw;
use enerj_hw::Hardware;

macro_rules! impl_fp_intrinsics {
    ($t:ty) => {
        impl Approx<$t> {
            /// Approximate square root (one approximate FP operation).
            pub fn sqrt_approx(self) -> Self {
                fp_unary(self, <$t>::sqrt)
            }

            /// Approximate absolute value (one approximate FP operation).
            pub fn abs_approx(self) -> Self {
                fp_unary(self, <$t>::abs)
            }

            /// Approximate floor (one approximate FP operation).
            pub fn floor_approx(self) -> Self {
                fp_unary(self, <$t>::floor)
            }

            /// Approximate minimum (one approximate FP operation).
            pub fn min_approx(self, other: impl Into<Approx<$t>>) -> Self {
                fp_binary(self, other.into(), <$t>::min)
            }

            /// Approximate maximum (one approximate FP operation).
            pub fn max_approx(self, other: impl Into<Approx<$t>>) -> Self {
                fp_binary(self, other.into(), <$t>::max)
            }
        }
    };
}

impl_fp_intrinsics!(f32);
impl_fp_intrinsics!(f64);

fn fp_unary<T: ApproxPrim>(x: Approx<T>, f: fn(T) -> T) -> Approx<T> {
    with_hw(|hw| match hw {
        Some(hw) => {
            let a = load(hw, x);
            let a = T::condition_operand(hw, a);
            Approx::from_raw(T::unit_result(hw, f(a)))
        }
        None => Approx::from_raw(f(raw(x))),
    })
}

fn fp_binary<T: ApproxPrim>(x: Approx<T>, y: Approx<T>, f: fn(T, T) -> T) -> Approx<T> {
    with_hw(|hw| match hw {
        Some(hw) => {
            let a = load(hw, x);
            let a = T::condition_operand(hw, a);
            let b = load(hw, y);
            let b = T::condition_operand(hw, b);
            Approx::from_raw(T::unit_result(hw, f(a, b)))
        }
        None => Approx::from_raw(f(raw(x), raw(y))),
    })
}

fn load<T: ApproxPrim>(hw: &mut Hardware, x: Approx<T>) -> T {
    T::from_bits64(hw.sram_read(x.raw().to_bits64(), T::WIDTH, true))
}

fn raw<T: ApproxPrim>(x: Approx<T>) -> T {
    x.raw()
}

impl Approx<bool> {
    /// Approximate conjunction (non-short-circuit, like Java's `&` on
    /// booleans): one approximate integer operation.
    pub fn and_approx(self, other: impl Into<Approx<bool>>) -> Approx<bool> {
        bool_binary(self, other.into(), |a, b| a && b)
    }

    /// Approximate disjunction: one approximate integer operation.
    pub fn or_approx(self, other: impl Into<Approx<bool>>) -> Approx<bool> {
        bool_binary(self, other.into(), |a, b| a || b)
    }

    /// Approximate negation: one approximate integer operation.
    pub fn not_approx(self) -> Approx<bool> {
        with_hw(|hw| match hw {
            Some(hw) => {
                let a = load(hw, self);
                Approx::from_raw(bool::unit_result(hw, !a))
            }
            None => Approx::from_raw(!self.raw()),
        })
    }
}

fn bool_binary(x: Approx<bool>, y: Approx<bool>, f: fn(bool, bool) -> bool) -> Approx<bool> {
    with_hw(|hw| match hw {
        Some(hw) => {
            let a = load(hw, x);
            let b = load(hw, y);
            Approx::from_raw(bool::unit_result(hw, f(a, b)))
        }
        None => Approx::from_raw(f(x.raw(), y.raw())),
    })
}

#[cfg(test)]
mod tests {
    use crate::runtime::Runtime;
    use crate::{endorse, Approx};
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact_rt() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn intrinsics_compute_exactly_when_masked() {
        let rt = exact_rt();
        rt.run(|| {
            assert_eq!(endorse(Approx::new(9.0f64).sqrt_approx()), 3.0);
            assert_eq!(endorse(Approx::new(-2.5f32).abs_approx()), 2.5);
            assert_eq!(endorse(Approx::new(2.7f64).floor_approx()), 2.0);
            assert_eq!(endorse(Approx::new(1.0f32).min_approx(2.0)), 1.0);
            assert_eq!(endorse(Approx::new(1.0f64).max_approx(2.0)), 2.0);
        });
        assert_eq!(rt.stats().fp_approx_ops, 5);
    }

    #[test]
    fn intrinsics_work_without_a_runtime() {
        assert_eq!(endorse(Approx::new(16.0f64).sqrt_approx()), 4.0);
        assert!(endorse(Approx::new(true).and_approx(false).not_approx()));
    }

    #[test]
    fn bool_connectives_count_int_ops() {
        let rt = exact_rt();
        rt.run(|| {
            let a = Approx::new(3i32).lt_approx(5); // true
            let b = Approx::new(2i32).gt_approx(7); // false
            assert!(endorse(a.or_approx(b)));
            assert!(!endorse(a.and_approx(b)));
            assert!(endorse(b.not_approx()));
        });
        // 2 comparisons + 3 connectives, all on the integer unit.
        assert_eq!(rt.stats().int_approx_ops, 5);
    }

    #[test]
    fn aggressive_sqrt_loses_precision_but_not_magnitude() {
        let cfg = HwConfig::for_level(Level::Aggressive)
            .with_mask(StrategyMask::NONE.with_fp_width(true));
        let rt = Runtime::with_config(cfg, 0);
        rt.run(|| {
            let x = endorse(Approx::new(10.0f64).sqrt_approx());
            assert!((x - 10.0f64.sqrt()).abs() < 0.1, "x = {x}");
        });
    }
}
