//! # enerj-core: the EnerJ programming model, embedded in Rust
//!
//! This crate reproduces the programming model of *EnerJ: Approximate Data
//! Types for Safe and General Low-Power Computation* (PLDI 2011), section 2,
//! as an embedded Rust API. The correspondence:
//!
//! | EnerJ construct | This crate |
//! |---|---|
//! | `@Approx T` | [`Approx<T>`] |
//! | `@Precise T` (default) | plain `T`, or [`Precise<T>`] when instrumented |
//! | `endorse(e)` | [`endorse`] / [`endorse_ctx`] |
//! | `@Approximable class C` | `struct C<M: Mode>` |
//! | `@Context T` | [`Ctx<T, M>`](context::Ctx) |
//! | `_APPROX` method overloading | trait impls selected on `M` |
//! | approximate arrays (section 2.6) | [`ApproxVec<T>`] |
//!
//! The static guarantees carry over: an `Approx<T>` cannot reach precise
//! code without an explicit [`endorse`], comparisons of approximate data
//! yield `Approx<bool>` and therefore cannot steer control flow implicitly,
//! and array indices are precise `usize` values.
//!
//! Execution is parameterized by an ambient [`Runtime`] wrapping the
//! simulated approximation-aware hardware of
//! [`enerj-hw`](enerj_hw). Without a runtime, every operation is precise —
//! an EnerJ program run as "plain Java".
//!
//! ## Example: the paper's opening example
//!
//! ```
//! use enerj_core::{endorse, Approx, Runtime};
//! use enerj_hw::config::Level;
//!
//! let rt = Runtime::new(Level::Medium, 0);
//! rt.run(|| {
//!     let a: Approx<i32> = Approx::new(7);
//!     let p: i32;
//!     // p = a;          // illegal: no implicit approx -> precise flow
//!     p = endorse(a);    // legal, explicit endorsement
//!     let _a2: Approx<i32> = p.into(); // precise -> approx is subtyping
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approx;
pub mod batch;
pub mod check;
pub mod context;
mod math;
mod precise;
mod prim;
mod record;
mod runtime;
mod vecs;

pub use approx::{endorse, Approx};
pub use batch::{ApproxBuf, BatchOp, BatchPrim};
pub use check::{endorse_checked, finite, in_range, not_nan, predicate, EndorseError, Guard};
pub use context::{endorse_ctx, ApproxMode, Ctx, Mode, PreciseMode};
pub use precise::Precise;
pub use prim::{ApproxArith, ApproxBits, ApproxPrim};
pub use record::{ApproxRecord, RecordSchema, RecordSchemaBuilder};
pub use runtime::{panic_message, Degraded, Runtime, PANIC_MESSAGE_LIMIT};
pub use vecs::{ApproxVec, PreciseVec};

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    #[test]
    fn re_exports_compose() {
        let cfg = HwConfig::for_level(Level::Mild).with_mask(StrategyMask::NONE);
        let rt = Runtime::with_config(cfg, 0);
        let out = rt.run(|| {
            let mut v = ApproxVec::from_slice(&[1.0f64, 2.0, 3.0]);
            let mut total = Approx::new(0.0f64);
            for i in 0..v.len() {
                total += v.get(i);
            }
            endorse(total / v.len() as f64)
        });
        assert_eq!(out, 2.0);
    }

    #[test]
    fn energy_decreases_when_work_is_approximate() {
        let run = |approx: bool| {
            let cfg = HwConfig::for_level(Level::Medium).with_mask(StrategyMask::NONE);
            let rt = Runtime::with_config(cfg, 0);
            rt.run(|| {
                if approx {
                    let mut acc = Approx::new(0.0f64);
                    for i in 0..1000 {
                        acc += i as f64;
                    }
                    let _ = endorse(acc);
                } else {
                    let mut acc = Precise::new(0.0f64);
                    for i in 0..1000 {
                        acc += i as f64;
                    }
                    let _ = acc.get();
                }
            });
            rt.energy().total
        };
        let approx_energy = run(true);
        let precise_energy = run(false);
        assert!(approx_energy < precise_energy);
        assert!((precise_energy - 1.0).abs() < 1e-12);
    }
}
