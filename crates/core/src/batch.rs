//! Batched approximate operations: whole-slice arithmetic over
//! [`ApproxVec`] data.
//!
//! The scalar embedding pays a full tour of the simulated hardware for
//! every element: a DRAM read per operand, two SRAM register reads, operand
//! conditioning, one functional-unit result phase and a DRAM write-back.
//! For the SciMark inner loops those per-element calls dominate wall-clock
//! time. This module regroups the tour *stream-wise*: an [`ApproxBuf`]
//! stages a run of elements in the register file, and [`zip`] / [`scalar`]
//! run each hardware phase over the whole slice using the batched entry
//! points of [`enerj_hw::batch`].
//!
//! ## Equivalence to the scalar loop
//!
//! A batched operation performs exactly the same per-element hardware
//! accesses as the scalar loop it replaces — the same number of clock
//! ticks, operation counts, SRAM bit-quanta and DRAM accesses, on the same
//! fault streams, consuming the same RNG draws. Regrouping only changes the
//! *order* in which the shared streams meet the data, so when a fault fires
//! it may land on a different element than in the scalar interleaving:
//! outcomes are equivalent in distribution (pinned by the 5-sigma tests in
//! this module), while the energy quanta are bit-identical.

use crate::approx::Approx;
use crate::prim::{ApproxArith, ApproxPrim};
use crate::runtime::with_hw;
use crate::vecs::ApproxVec;
use enerj_hw::Hardware;

/// Stack-buffer size for T <-> u64 bit conversion: one conversion chunk
/// stays in cache while the batched hw entry points stride over it.
const CHUNK: usize = 128;

/// Moves a slice through approximate SRAM (read or write direction) by
/// converting fixed-size chunks to raw bit patterns. The fault streams see
/// exactly the trials a scalar `sram_read`/`sram_write` loop would produce.
fn sram_slice<T: ApproxPrim>(hw: &mut Hardware, xs: &mut [T], write: bool) {
    let mut buf = [0u64; CHUNK];
    for chunk in xs.chunks_mut(CHUNK) {
        let bits = &mut buf[..chunk.len()];
        for (b, x) in bits.iter_mut().zip(chunk.iter()) {
            *b = x.to_bits64();
        }
        if write {
            hw.sram_write_slice(bits, T::WIDTH, true);
        } else {
            hw.sram_read_slice(bits, T::WIDTH, true);
        }
        for (x, b) in chunk.iter_mut().zip(bits.iter()) {
            *x = T::from_bits64(*b);
        }
    }
}

/// A primitive that supports whole-slice approximate execution.
///
/// Mirrors the scalar hooks of [`ApproxPrim`] (`condition_operand`,
/// `unit_result`) at slice granularity. Floating-point types dispatch to
/// the native f32/f64 slice entry points; integers convert through a
/// fixed-size bit buffer.
pub trait BatchPrim: ApproxPrim {
    /// Applies operand conditioning over a slice (mantissa truncation for
    /// floats; identity for integers).
    fn condition_slice(hw: &Hardware, xs: &mut [Self]) {
        let _ = (hw, xs);
    }

    /// Routes a slice of raw results through the approximate functional
    /// unit: counts every operation, advances the clock once, and resolves
    /// timing-error sites by index.
    fn result_slice(hw: &mut Hardware, xs: &mut [Self]);
}

macro_rules! impl_batch_int {
    ($($t:ty),* $(,)?) => {$(
        impl BatchPrim for $t {
            fn result_slice(hw: &mut Hardware, xs: &mut [Self]) {
                let mut buf = [0u64; CHUNK];
                for chunk in xs.chunks_mut(CHUNK) {
                    let bits = &mut buf[..chunk.len()];
                    for (b, x) in bits.iter_mut().zip(chunk.iter()) {
                        *b = x.to_bits64();
                    }
                    hw.approx_int_result_slice(bits, <$t as ApproxPrim>::WIDTH);
                    for (x, b) in chunk.iter_mut().zip(bits.iter()) {
                        *x = <$t>::from_bits64(*b);
                    }
                }
            }
        }
    )*};
}

impl_batch_int!(i8, i16, i32, i64, u8, u16, u32, u64);

impl BatchPrim for f32 {
    fn condition_slice(hw: &Hardware, xs: &mut [Self]) {
        hw.approx_f32_operand_slice(xs);
    }

    fn result_slice(hw: &mut Hardware, xs: &mut [Self]) {
        hw.approx_f32_result_slice(xs);
    }
}

impl BatchPrim for f64 {
    fn condition_slice(hw: &Hardware, xs: &mut [Self]) {
        hw.approx_f64_operand_slice(xs);
    }

    fn result_slice(hw: &mut Hardware, xs: &mut [Self]) {
        hw.approx_f64_result_slice(xs);
    }
}

/// The element-wise operations a batched functional unit implements.
///
/// The non-trapping semantics of [`ApproxArith`] apply: integer arithmetic
/// wraps and division by zero yields 0 (NaN for floats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchOp {
    /// Element-wise addition.
    Add,
    /// Element-wise subtraction.
    Sub,
    /// Element-wise multiplication.
    Mul,
    /// Element-wise division.
    Div,
}

impl BatchOp {
    /// Applies the operation to one element pair.
    fn apply<T: ApproxArith>(self, a: T, b: T) -> T {
        match self {
            BatchOp::Add => T::approx_add(a, b),
            BatchOp::Sub => T::approx_sub(a, b),
            BatchOp::Mul => T::approx_mul(a, b),
            BatchOp::Div => T::approx_div(a, b),
        }
    }
}

/// A register-resident run of approximate values.
///
/// Staging values in an `ApproxBuf` is free, exactly like holding
/// `Approx<T>` temporaries in scalar code: energy is charged when the data
/// moves through a hardware structure ([`ApproxBuf::load`] /
/// [`ApproxBuf::store`] for DRAM, [`zip`] / [`scalar`] for the register
/// file and functional units).
#[derive(Debug, Clone)]
pub struct ApproxBuf<T: ApproxPrim> {
    vals: Vec<T>,
}

impl<T: ApproxPrim> ApproxBuf<T> {
    /// Loads `len` elements of `v` starting at `start` into registers.
    ///
    /// One bulk DRAM read: the same per-element decay exposure, clock ticks
    /// and storage accounting as a `v.get(i)` loop.
    ///
    /// # Panics
    ///
    /// Panics if `start + len` exceeds `v.len()`.
    pub fn load(v: &mut ApproxVec<T>, start: usize, len: usize) -> Self {
        let mut bits = vec![0u64; len];
        v.read_bits_slice(start, &mut bits);
        ApproxBuf { vals: bits.into_iter().map(T::from_bits64).collect() }
    }

    /// Stores the buffer back to `v` starting at `start`, refreshing the
    /// elements' decay clocks. The bulk counterpart of a `v.set(i, x)`
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if `start + self.len()` exceeds `v.len()`.
    pub fn store(&self, v: &mut ApproxVec<T>, start: usize) {
        let mut bits = vec![0u64; self.vals.len()];
        for (b, x) in bits.iter_mut().zip(&self.vals) {
            *b = x.to_bits64();
        }
        v.write_bits_slice(start, &bits);
    }

    /// Builds a buffer by evaluating `f` at every index (a register move:
    /// no simulated energy).
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> Approx<T>) -> Self {
        ApproxBuf { vals: (0..len).map(|i| f(i).raw()).collect() }
    }

    /// Number of staged elements.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The element at `i`, as a register move.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn get(&self, i: usize) -> Approx<T> {
        Approx::from_raw(self.vals[i])
    }

    /// Replaces the element at `i`, as a register move.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn set(&mut self, i: usize, value: Approx<T>) {
        self.vals[i] = value.raw();
    }

    /// Endorses the whole buffer (section 2.2, in bulk): one final batched
    /// SRAM read, equivalent to calling [`crate::endorse`] per element.
    pub fn endorse_to_vec(mut self) -> Vec<T> {
        with_hw(|hw| {
            if let Some(hw) = hw {
                sram_slice(hw, &mut self.vals, false);
            }
        });
        self.vals
    }
}

/// Element-wise `a op b` over two equal-length buffers.
///
/// Replicates the scalar [`Approx`] operator composition phase-by-phase,
/// each phase batched: SRAM-read and condition `a`, SRAM-read and condition
/// `b`, compute, then run the result phase. Without an installed
/// [`Runtime`](crate::Runtime) the computation is exact.
///
/// # Panics
///
/// Panics if the buffers differ in length.
pub fn zip<T: BatchPrim + ApproxArith>(
    op: BatchOp,
    a: &ApproxBuf<T>,
    b: &ApproxBuf<T>,
) -> ApproxBuf<T> {
    assert_eq!(a.len(), b.len(), "zip requires equal lengths");
    with_hw(|hw| match hw {
        Some(hw) => {
            let mut av = a.vals.clone();
            sram_slice(hw, &mut av, false);
            T::condition_slice(hw, &mut av);
            let mut bv = b.vals.clone();
            sram_slice(hw, &mut bv, false);
            T::condition_slice(hw, &mut bv);
            for (x, y) in av.iter_mut().zip(&bv) {
                *x = op.apply(*x, *y);
            }
            T::result_slice(hw, &mut av);
            ApproxBuf { vals: av }
        }
        None => {
            ApproxBuf { vals: a.vals.iter().zip(&b.vals).map(|(&x, &y)| op.apply(x, y)).collect() }
        }
    })
}

/// Element-wise `a op s` with a broadcast right-hand operand.
///
/// Each element still pays the scalar loop's second register read of `s`,
/// so operation counts and energy match `for i { a.get(i) op s }` exactly.
pub fn scalar<T: BatchPrim + ApproxArith>(
    op: BatchOp,
    a: &ApproxBuf<T>,
    s: Approx<T>,
) -> ApproxBuf<T> {
    let b = ApproxBuf { vals: vec![s.raw(); a.len()] };
    zip(op, a, &b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use crate::{endorse, Approx, ApproxVec};
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact_rt() -> Runtime {
        let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
        Runtime::with_config(cfg, 0)
    }

    #[test]
    fn zip_matches_scalar_loop_exactly_when_masked() {
        let run_batched = exact_rt();
        let batched = run_batched.run(|| {
            let mut v = ApproxVec::from_slice(&[1.5f64, -2.0, 3.25, 0.0, 7.5]);
            let mut w = ApproxVec::from_slice(&[0.5f64, 4.0, -1.25, 9.0, 0.5]);
            let a = ApproxBuf::load(&mut v, 0, 5);
            let b = ApproxBuf::load(&mut w, 0, 5);
            let sum = zip(BatchOp::Add, &a, &b);
            sum.store(&mut v, 0);
            v.endorse_to_vec()
        });
        let run_scalar = exact_rt();
        let scalar_out = run_scalar.run(|| {
            let mut v = ApproxVec::from_slice(&[1.5f64, -2.0, 3.25, 0.0, 7.5]);
            let mut w = ApproxVec::from_slice(&[0.5f64, 4.0, -1.25, 9.0, 0.5]);
            for i in 0..5 {
                let s = v.get(i) + w.get(i);
                v.set(i, s);
            }
            v.endorse_to_vec()
        });
        assert_eq!(batched, scalar_out);
        assert_eq!(run_batched.stats(), run_scalar.stats());
        assert_eq!(run_batched.energy_quanta(), run_scalar.energy_quanta());
    }

    #[test]
    fn every_op_computes_its_arithmetic() {
        let rt = exact_rt();
        rt.run(|| {
            let a = ApproxBuf::from_fn(4, |i| Approx::from_raw(12.0f64 + i as f64));
            let b = ApproxBuf::from_fn(4, |_| Approx::from_raw(4.0f64));
            assert_eq!(zip(BatchOp::Add, &a, &b).endorse_to_vec()[0], 16.0);
            assert_eq!(zip(BatchOp::Sub, &a, &b).endorse_to_vec()[1], 9.0);
            assert_eq!(zip(BatchOp::Mul, &a, &b).endorse_to_vec()[2], 56.0);
            assert_eq!(zip(BatchOp::Div, &a, &b).endorse_to_vec()[3], 3.75);
        });
    }

    #[test]
    fn integer_zip_wraps_and_never_traps() {
        let rt = exact_rt();
        rt.run(|| {
            let a = ApproxBuf::from_fn(3, |_| Approx::from_raw(i32::MAX));
            let b = ApproxBuf::from_fn(3, |i| Approx::from_raw(i as i32));
            let sum = zip(BatchOp::Add, &a, &b);
            assert_eq!(sum.get(1).endorse(), i32::MIN);
            let div = zip(BatchOp::Div, &a, &b);
            assert_eq!(div.get(0).endorse(), 0, "x / 0 must be 0");
        });
    }

    #[test]
    fn scalar_broadcast_counts_like_the_scalar_loop() {
        let run_batched = exact_rt();
        let batched = run_batched.run(|| {
            let a = ApproxBuf::from_fn(10, |i| Approx::from_raw(i as f64));
            scalar(BatchOp::Mul, &a, Approx::from_raw(2.5)).endorse_to_vec()
        });
        let run_scalar = exact_rt();
        let scalar_out = run_scalar.run(|| {
            let s = Approx::from_raw(2.5f64);
            (0..10).map(|i| endorse(Approx::from_raw(i as f64) * s)).collect::<Vec<_>>()
        });
        assert_eq!(batched, scalar_out);
        assert_eq!(run_batched.stats(), run_scalar.stats());
    }

    #[test]
    fn without_runtime_zip_is_precise() {
        let a = ApproxBuf::from_fn(6, |i| Approx::from_raw(i as f32));
        let b = ApproxBuf::from_fn(6, |i| Approx::from_raw(1.0f32 + i as f32));
        let out = zip(BatchOp::Add, &a, &b);
        for i in 0..6 {
            assert_eq!(out.get(i).endorse(), 2.0 * i as f32 + 1.0);
        }
    }

    #[test]
    fn f32_conditioning_truncates_mantissas_like_scalar() {
        let cfg = HwConfig::for_level(Level::Aggressive)
            .with_mask(StrategyMask::NONE.with_fp_width(true));
        let rt = Runtime::with_config(cfg, 0);
        rt.run(|| {
            let a = ApproxBuf::from_fn(4, |_| Approx::from_raw(1.001f64));
            let b = ApproxBuf::from_fn(4, |_| Approx::from_raw(1.0f64));
            let out = zip(BatchOp::Mul, &a, &b);
            // With 8 mantissa bits the .001 is lost, as in the scalar test.
            assert_eq!(out.get(0).endorse(), 1.0);
        });
    }

    #[test]
    fn aggressive_zip_faults_at_the_scalar_rate() {
        // 5-sigma band on the timing-error count through the batched
        // result phase (p = 1e-2 per op at Aggressive on the fp unit).
        let cfg = HwConfig::for_level(Level::Aggressive)
            .with_mask(StrategyMask::NONE.with_fu_timing(true));
        let rt = Runtime::with_config(cfg, 99);
        let n = 40_000usize;
        rt.run(|| {
            let a = ApproxBuf::from_fn(n, |i| Approx::from_raw(i as f64));
            let b = ApproxBuf::from_fn(n, |_| Approx::from_raw(1.0f64));
            let _ = zip(BatchOp::Add, &a, &b);
        });
        let faults =
            rt.fault_counters().count(enerj_hw::trace::FaultKind::FpTiming).injections as f64;
        let p = 1e-2;
        let expected = n as f64 * p;
        let sigma = (n as f64 * p * (1.0 - p)).sqrt();
        assert!(
            (faults - expected).abs() < 5.0 * sigma,
            "batched faults {faults} vs {expected} +/- {}",
            5.0 * sigma
        );
        assert_eq!(rt.stats().fp_approx_ops, n as u64);
    }
}
