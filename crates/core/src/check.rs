//! Checked endorsements: sanity-guarded approximate→precise casts.
//!
//! EnerJ's `endorse` (section 2.2) is a blind cast — the paper trusts the
//! programmer to "handle the imprecision intelligently", but gives them no
//! vocabulary for doing so at the cast itself. A fault-corrupted value
//! therefore crosses into the precise world unchecked. Significance-aware
//! runtimes close this gap with per-result checking and re-execution at
//! higher precision; this module supplies the checking half:
//! [`endorse_checked`] performs the ordinary endorsement (including its
//! final approximate SRAM read — the hardware cost is identical to
//! [`endorse`](crate::endorse)) and then applies an application-supplied
//! [`Guard`], returning `Err(EndorseError)` instead of admitting a value
//! that fails its sanity check. Recovery layers (`enerj_apps::recovery`)
//! treat that rejection as a retryable failure.
//!
//! # Examples
//!
//! ```
//! use enerj_core::{endorse_checked, in_range, Approx, Runtime};
//! use enerj_hw::config::Level;
//!
//! let rt = Runtime::new(Level::Mild, 0);
//! let admitted = rt.run(|| {
//!     let x = Approx::new(0.25f64);
//!     endorse_checked(x, in_range(0.0, 1.0))
//! });
//! assert_eq!(admitted.unwrap(), 0.25);
//! ```

use std::fmt;

use crate::approx::{endorse, Approx};
use crate::prim::ApproxPrim;

/// Why a checked endorsement rejected its value.
///
/// Carries the guard's description and a rendering of the offending value,
/// so failure causes can be reported without re-running under a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EndorseError {
    /// Description of the guard that rejected the value.
    pub guard: String,
    /// `Debug` rendering of the rejected value.
    pub value: String,
}

impl fmt::Display for EndorseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "endorsement rejected: {} failed on {}", self.guard, self.value)
    }
}

impl std::error::Error for EndorseError {}

/// A sanity check applied to a value at an endorsement boundary.
///
/// Guards are small, composable predicates; combine them with
/// [`Guard::and`]. They are deliberately pure — a guard sees the endorsed
/// value only, never the hardware — so checking cannot perturb the fault
/// PRNG or the energy accounting.
pub trait Guard<T> {
    /// One-line description of what the guard admits, for diagnostics.
    fn describe(&self) -> String;

    /// Whether `value` passes the check.
    fn admit(&self, value: &T) -> bool;

    /// Both this guard and `other` must admit the value.
    fn and<G: Guard<T>>(self, other: G) -> And<Self, G>
    where
        Self: Sized,
    {
        And(self, other)
    }
}

/// Conjunction of two guards (see [`Guard::and`]).
#[derive(Debug, Clone, Copy)]
pub struct And<A, B>(A, B);

impl<T, A: Guard<T>, B: Guard<T>> Guard<T> for And<A, B> {
    fn describe(&self) -> String {
        format!("{} and {}", self.0.describe(), self.1.describe())
    }

    fn admit(&self, value: &T) -> bool {
        self.0.admit(value) && self.1.admit(value)
    }
}

/// Admits values in the closed range `[lo, hi]` (see [`in_range`]).
#[derive(Debug, Clone, Copy)]
pub struct InRange<T> {
    lo: T,
    hi: T,
}

/// A guard admitting values in the closed range `[lo, hi]`.
///
/// For floats, NaN compares false against both bounds and is rejected.
pub fn in_range<T: PartialOrd + fmt::Debug>(lo: T, hi: T) -> InRange<T> {
    InRange { lo, hi }
}

impl<T: PartialOrd + fmt::Debug> Guard<T> for InRange<T> {
    fn describe(&self) -> String {
        format!("in [{:?}, {:?}]", self.lo, self.hi)
    }

    fn admit(&self, value: &T) -> bool {
        *value >= self.lo && *value <= self.hi
    }
}

/// Admits finite floats (see [`finite`]).
#[derive(Debug, Clone, Copy)]
pub struct Finite;

/// A guard admitting finite floats: rejects NaN and ±infinity. The classic
/// symptom of a high-order mantissa upset is a silently enormous or
/// non-finite value; this is the cheapest useful check on any float result.
pub fn finite() -> Finite {
    Finite
}

/// Admits floats that are not NaN (see [`not_nan`]).
#[derive(Debug, Clone, Copy)]
pub struct NotNan;

/// A guard rejecting NaN but admitting ±infinity, for algorithms whose
/// intermediate results legitimately saturate.
pub fn not_nan() -> NotNan {
    NotNan
}

macro_rules! impl_float_guards {
    ($($t:ty),*) => {$(
        impl Guard<$t> for Finite {
            fn describe(&self) -> String {
                "finite".to_string()
            }
            fn admit(&self, value: &$t) -> bool {
                value.is_finite()
            }
        }
        impl Guard<$t> for NotNan {
            fn describe(&self) -> String {
                "not NaN".to_string()
            }
            fn admit(&self, value: &$t) -> bool {
                !value.is_nan()
            }
        }
    )*};
}

impl_float_guards!(f32, f64);

/// An arbitrary named predicate (see [`predicate`]).
#[derive(Debug, Clone, Copy)]
pub struct Predicate<F> {
    name: &'static str,
    check: F,
}

/// A guard from an arbitrary predicate. `name` is the diagnostic
/// description; keep it short and declarative ("decoded payload non-empty").
pub fn predicate<T, F: Fn(&T) -> bool>(name: &'static str, check: F) -> Predicate<F> {
    Predicate { name, check }
}

impl<T, F: Fn(&T) -> bool> Guard<T> for Predicate<F> {
    fn describe(&self) -> String {
        self.name.to_string()
    }

    fn admit(&self, value: &T) -> bool {
        (self.check)(value)
    }
}

/// Endorses an approximate value, then applies `guard` to the result.
///
/// The endorsement itself is exactly [`endorse`](crate::endorse): one final
/// approximate SRAM read under an installed runtime. The guard runs on the
/// precise side of the cast and touches no simulated hardware, so
/// `endorse_checked` has the same fault/energy footprint as a blind
/// endorsement — callers pay only for the host-side predicate.
pub fn endorse_checked<T, G>(value: Approx<T>, guard: G) -> Result<T, EndorseError>
where
    T: ApproxPrim + fmt::Debug,
    G: Guard<T>,
{
    let endorsed = endorse(value);
    if guard.admit(&endorsed) {
        Ok(endorsed)
    } else {
        Err(EndorseError { guard: guard.describe(), value: format!("{endorsed:?}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact_rt() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn checked_endorsement_admits_sane_values() {
        let rt = exact_rt();
        rt.run(|| {
            let x = Approx::new(0.5f64);
            assert_eq!(endorse_checked(x, in_range(0.0, 1.0)).unwrap(), 0.5);
            assert_eq!(endorse_checked(x, finite()).unwrap(), 0.5);
            assert_eq!(endorse_checked(x, not_nan()).unwrap(), 0.5);
        });
    }

    #[test]
    fn checked_endorsement_rejects_with_cause() {
        let rt = exact_rt();
        rt.run(|| {
            let x = Approx::new(f64::NAN);
            let err = endorse_checked(x, finite()).unwrap_err();
            assert_eq!(err.guard, "finite");
            assert_eq!(err.value, "NaN");
            assert!(err.to_string().contains("finite"));

            let y = Approx::new(7i32);
            let err = endorse_checked(y, in_range(0, 5)).unwrap_err();
            assert_eq!(err.guard, "in [0, 5]");
            assert_eq!(err.value, "7");
        });
    }

    #[test]
    fn range_guard_rejects_nan() {
        // NaN compares false against both bounds; a range guard must not
        // admit it by vacuous truth.
        assert!(!in_range(0.0f64, 1.0).admit(&f64::NAN));
        assert!(not_nan().admit(&f64::INFINITY));
        assert!(!finite().admit(&f64::INFINITY));
    }

    #[test]
    fn guards_compose_with_and() {
        let g = in_range(0.0f64, 10.0).and(predicate("integral", |v: &f64| v.fract() == 0.0));
        assert!(g.admit(&3.0));
        assert!(!g.admit(&3.5));
        assert!(!g.admit(&11.0));
        assert_eq!(g.describe(), "in [0.0, 10.0] and integral");
    }

    #[test]
    fn checked_endorsement_costs_the_same_as_blind() {
        // Same hardware trajectory: the guard must not touch the simulator.
        let run = |checked: bool| {
            let rt = Runtime::new(Level::Aggressive, 42);
            let _ = rt.run(|| {
                let mut acc = Approx::new(0.0f64);
                for i in 0..500 {
                    acc += i as f64;
                }
                if checked {
                    endorse_checked(acc, finite()).unwrap_or(0.0)
                } else {
                    crate::endorse(acc)
                }
            });
            (rt.stats(), rt.energy().total)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn checked_endorsement_without_runtime_is_precise() {
        let x = Approx::new(2.0f64);
        assert_eq!(endorse_checked(x, finite()).unwrap(), 2.0);
    }
}
