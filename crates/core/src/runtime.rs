//! The approximate runtime: the ambient connection between `Approx` values
//! and the simulated hardware.
//!
//! EnerJ programs are ordinary programs; the *execution substrate* decides
//! what approximation means (section 4). In this embedding, a [`Runtime`]
//! owns a simulated [`Hardware`] and installs it for the duration of a
//! [`Runtime::run`] call. `Approx` operations executed inside the closure
//! are routed through the simulator; outside of any runtime they execute
//! precisely, mirroring the paper's observation that "one valid execution is
//! to ignore all annotations and execute the code as plain Java."

use std::any::Any;
use std::cell::RefCell;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use enerj_hw::config::{HwConfig, Level};
use enerj_hw::energy::{energy_quanta, normalized_energy, EnergyBreakdown, EnergyQuantaBreakdown};
use enerj_hw::stats::Stats;
use enerj_hw::{Hardware, WatchdogTrip};

/// Why a [`Runtime::run_guarded`] call failed to complete normally.
///
/// Both arms are *graceful degradation*, not harness errors: the guarded
/// region was stopped, the runtime is intact, and its statistics and energy
/// accounting still reflect the work performed up to the stop — recovery
/// layers charge that partial work honestly before retrying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degraded {
    /// The op-tick budget was exhausted: a fault-corrupted loop (or
    /// genuinely over-budget computation) was terminated by the watchdog.
    OpBudgetExceeded {
        /// Completed simulated operations at the moment of the trip.
        op_ticks: u64,
        /// The budget the watchdog was armed with.
        budget: u64,
    },
    /// The guarded closure panicked; carries the truncated panic message.
    Panicked(String),
}

impl fmt::Display for Degraded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degraded::OpBudgetExceeded { op_ticks, budget } => {
                write!(f, "op budget exceeded ({op_ticks} ticks, budget {budget})")
            }
            Degraded::Panicked(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

/// Extracts a human-readable message from a panic payload, truncated to
/// `PANIC_MESSAGE_LIMIT` bytes (on a char boundary) so one huge formatted
/// panic cannot bloat failure-cause records.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    };
    let mut end = msg.len().min(PANIC_MESSAGE_LIMIT);
    while !msg.is_char_boundary(end) {
        end -= 1;
    }
    if end < msg.len() {
        format!("{}…", &msg[..end])
    } else {
        msg.to_string()
    }
}

/// Longest panic message retained by [`panic_message`], in bytes.
pub const PANIC_MESSAGE_LIMIT: usize = 120;

thread_local! {
    static CURRENT: RefCell<Vec<Rc<RefCell<Hardware>>>> = const { RefCell::new(Vec::new()) };
}

/// A handle to a simulated approximation-aware machine.
///
/// Cloning a `Runtime` clones the *handle*; both refer to the same machine.
/// Runtimes are single-threaded (the simulated machine is not `Sync`).
///
/// # Examples
///
/// ```
/// use enerj_core::{endorse, Approx, Runtime};
/// use enerj_hw::config::Level;
///
/// let rt = Runtime::new(Level::Mild, 1);
/// let y = rt.run(|| {
///     let x = Approx::new(21i32);
///     endorse(x + x)
/// });
/// // Mild faults are vanishingly rare; the count of approximate ops is exact.
/// assert_eq!(rt.stats().int_approx_ops, 1);
/// let _ = y;
/// ```
#[derive(Debug, Clone)]
pub struct Runtime {
    hw: Rc<RefCell<Hardware>>,
}

impl Runtime {
    /// Creates a runtime at a Table 2 level with every strategy enabled and
    /// the random-value error mode — the paper's headline configuration.
    pub fn new(level: Level, seed: u64) -> Self {
        Runtime::with_config(HwConfig::for_level(level), seed)
    }

    /// Creates a runtime with an explicit hardware configuration.
    pub fn with_config(cfg: HwConfig, seed: u64) -> Self {
        Runtime { hw: Rc::new(RefCell::new(Hardware::new(cfg, seed))) }
    }

    /// Runs `f` with this runtime installed as the ambient substrate.
    ///
    /// Calls may nest (the innermost runtime wins), and the installation is
    /// popped even if `f` panics.
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                CURRENT.with(|c| {
                    c.borrow_mut().pop();
                });
            }
        }
        CURRENT.with(|c| c.borrow_mut().push(Rc::clone(&self.hw)));
        let _guard = Guard;
        f()
    }

    /// Runs `f` like [`Runtime::run`], but under a watchdog: if the
    /// simulated machine completes more than `max_ops` op-ticks, the region
    /// is terminated and `Err(Degraded::OpBudgetExceeded)` returned; if `f`
    /// panics, the panic is contained as `Err(Degraded::Panicked)`.
    ///
    /// The budget is measured on the virtual clock, so a trip is a
    /// deterministic function of the configuration, seed and program —
    /// independent of host speed and thread count. Statistics and energy
    /// remain readable after a degraded return and cover the partial work.
    ///
    /// # Examples
    ///
    /// ```
    /// use enerj_core::{endorse, Approx, Degraded, Runtime};
    /// use enerj_hw::config::Level;
    ///
    /// let rt = Runtime::new(Level::Mild, 0);
    /// let out = rt.run_guarded(100, || {
    ///     let mut acc = Approx::new(0i64);
    ///     loop {
    ///         acc += 1; // a "corrupted loop bound": never exits
    ///     }
    ///     #[allow(unreachable_code)]
    ///     endorse(acc)
    /// });
    /// assert!(matches!(out, Err(Degraded::OpBudgetExceeded { .. })));
    /// ```
    pub fn run_guarded<R>(&self, max_ops: u64, f: impl FnOnce() -> R) -> Result<R, Degraded> {
        enerj_hw::silence_watchdog_panics();
        self.hw.borrow_mut().arm_watchdog(max_ops);
        let result = catch_unwind(AssertUnwindSafe(|| self.run(f)));
        // The trip disarms itself, but a normal or panicking return leaves
        // the deadline armed — clear it so later unguarded use never trips.
        self.hw.borrow_mut().disarm_watchdog();
        match result {
            Ok(value) => Ok(value),
            Err(payload) => match payload.downcast_ref::<WatchdogTrip>() {
                Some(trip) => {
                    Err(Degraded::OpBudgetExceeded { op_ticks: trip.op_ticks, budget: trip.budget })
                }
                None => Err(Degraded::Panicked(panic_message(payload.as_ref()))),
            },
        }
    }

    /// A snapshot of the machine's statistics.
    pub fn stats(&self) -> Stats {
        self.hw.borrow().stats()
    }

    /// Normalized energy of the run so far (1.0 = fully precise execution),
    /// per the section 5.4 model with the configured Table 2 parameters.
    pub fn energy(&self) -> EnergyBreakdown {
        let hw = self.hw.borrow();
        normalized_energy(&hw.stats(), &hw.config().params)
    }

    /// Exact integer energy of the run so far: scaled and baseline quanta
    /// per component (see [`enerj_hw::quanta`]). Unlike [`Runtime::energy`]
    /// this involves no floats, so totals built from it can be merged in
    /// any order and compared with `==`.
    pub fn energy_quanta(&self) -> EnergyQuantaBreakdown {
        let hw = self.hw.borrow();
        energy_quanta(&hw.stats(), &hw.config().params)
    }

    /// The active hardware configuration.
    pub fn config(&self) -> HwConfig {
        *self.hw.borrow().config()
    }

    /// Resets statistics and the virtual clock (RNG state is kept).
    pub fn reset_stats(&self) {
        self.hw.borrow_mut().reset_stats();
    }

    /// Enables fault tracing: the machine retains the last `capacity`
    /// injected faults for post-mortem inspection.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&self, capacity: usize) {
        self.hw.borrow_mut().enable_trace(capacity);
    }

    /// A snapshot of the retained fault events (empty if tracing is off).
    pub fn fault_trace(&self) -> Vec<enerj_hw::trace::FaultEvent> {
        self.hw.borrow().trace().map(|t| t.events().copied().collect()).unwrap_or_default()
    }

    /// A snapshot of the always-on per-kind fault counters.
    pub fn fault_counters(&self) -> enerj_hw::FaultCounters {
        *self.hw.borrow().fault_counters()
    }

    /// Enables the opt-in structured fault log (unbounded, unlike the
    /// bounded trace ring buffer). Clears any previously collected events.
    pub fn enable_fault_log(&self) {
        self.hw.borrow_mut().enable_event_log();
    }

    /// Takes the collected fault-log events, leaving the log enabled and
    /// empty. Empty if the log was never enabled.
    pub fn take_fault_events(&self) -> Vec<enerj_hw::trace::FaultEvent> {
        self.hw.borrow_mut().take_event_log()
    }

    /// The shared hardware handle, for substrate-level extensions.
    pub fn hardware(&self) -> Rc<RefCell<Hardware>> {
        Rc::clone(&self.hw)
    }
}

/// Runs `f` with the ambient hardware, if a runtime is installed.
pub(crate) fn with_hw<R>(f: impl FnOnce(Option<&mut Hardware>) -> R) -> R {
    CURRENT.with(|c| {
        let top = c.borrow().last().cloned();
        match top {
            Some(hw) => f(Some(&mut hw.borrow_mut())),
            None => f(None),
        }
    })
}

/// The ambient hardware handle, if a runtime is installed. Used by heap
/// structures that must outlive individual operations.
pub(crate) fn current_hw() -> Option<Rc<RefCell<Hardware>>> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_hw::stats::OpKind;

    #[test]
    fn no_runtime_means_no_ambient_hardware() {
        assert!(current_hw().is_none());
        let answered = with_hw(|hw| hw.is_none());
        assert!(answered);
    }

    #[test]
    fn run_installs_and_removes() {
        let rt = Runtime::new(Level::Mild, 0);
        rt.run(|| {
            assert!(current_hw().is_some());
        });
        assert!(current_hw().is_none());
    }

    #[test]
    fn nested_runtimes_innermost_wins() {
        let outer = Runtime::new(Level::Mild, 0);
        let inner = Runtime::new(Level::Aggressive, 0);
        outer.run(|| {
            inner.run(|| {
                with_hw(|hw| {
                    let cfg = *hw.expect("runtime installed").config();
                    assert_eq!(cfg.params, Level::Aggressive.params());
                });
            });
            with_hw(|hw| {
                let cfg = *hw.expect("runtime installed").config();
                assert_eq!(cfg.params, Level::Mild.params());
            });
        });
    }

    #[test]
    fn panic_pops_installation() {
        let rt = Runtime::new(Level::Mild, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|| panic!("boom"));
        }));
        assert!(result.is_err());
        assert!(current_hw().is_none());
    }

    #[test]
    fn stats_are_shared_across_clones() {
        let rt = Runtime::new(Level::Mild, 0);
        let rt2 = rt.clone();
        rt.run(|| {
            with_hw(|hw| hw.unwrap().precise_op(OpKind::Int));
        });
        assert_eq!(rt2.stats().int_precise_ops, 1);
        rt2.reset_stats();
        assert_eq!(rt.stats().int_precise_ops, 0);
    }

    #[test]
    fn installations_are_per_thread() {
        // The trial-campaign runner (enerj-apps' `trials` module) relies on
        // `CURRENT` being thread-local: workers install and pop their own
        // runtimes without observing each other's, and a runtime installed
        // on one thread is invisible on another.
        let rt = Runtime::new(Level::Mild, 0);
        rt.run(|| {
            assert!(current_hw().is_some());
            std::thread::scope(|scope| {
                for seed in 0..4u64 {
                    scope.spawn(move || {
                        assert!(current_hw().is_none(), "other thread's runtime leaked in");
                        let local = Runtime::new(Level::Aggressive, seed);
                        local.run(|| {
                            with_hw(|hw| hw.unwrap().precise_op(OpKind::Int));
                        });
                        assert!(current_hw().is_none());
                        assert_eq!(local.stats().int_precise_ops, 1);
                    });
                }
            });
            // The spawning thread's installation survived its workers.
            assert!(current_hw().is_some());
        });
        assert_eq!(rt.stats().int_precise_ops, 0, "worker ops never hit this runtime");
    }

    #[test]
    fn run_guarded_completes_within_budget() {
        let rt = Runtime::new(Level::Mild, 0);
        let out = rt.run_guarded(1_000_000, || {
            let mut acc = crate::Approx::new(0i64);
            for i in 0..100 {
                acc += i;
            }
            crate::endorse(acc)
        });
        assert_eq!(out, Ok(4950));
        assert!(!rt.hardware().borrow().watchdog_armed(), "budget cleared on success");
    }

    #[test]
    fn run_guarded_trips_on_runaway_loops_deterministically() {
        let trip = |seed: u64| {
            let rt = Runtime::new(Level::Aggressive, seed);
            let out: Result<(), Degraded> = rt.run_guarded(10_000, || {
                let mut acc = crate::Approx::new(0i64);
                loop {
                    acc += 1;
                }
            });
            (out, rt.stats().int_approx_ops, rt.energy().total)
        };
        let (out, ops, energy) = trip(7);
        match out {
            Err(Degraded::OpBudgetExceeded { op_ticks, budget }) => {
                assert_eq!(budget, 10_000);
                assert!(op_ticks >= 10_000);
            }
            other => panic!("expected budget trip, got {other:?}"),
        }
        assert!(ops > 0, "partial work is still accounted");
        assert!(energy > 0.0 && energy <= 1.0);
        assert_eq!(trip(7), trip(7), "trips are deterministic per seed");
    }

    #[test]
    fn run_guarded_contains_panics_with_message() {
        let rt = Runtime::new(Level::Mild, 0);
        let out: Result<(), Degraded> = rt.run_guarded(1_000, || panic!("boom at {}", 42));
        assert_eq!(out, Err(Degraded::Panicked("boom at 42".to_string())));
        assert!(current_hw().is_none(), "installation popped on panic");
    }

    #[test]
    fn run_guarded_leaves_runtime_usable_after_trip() {
        let rt = Runtime::new(Level::Mild, 3);
        let _ = rt.run_guarded(100, || {
            let mut acc = crate::Approx::new(0i64);
            loop {
                acc += 1;
            }
        });
        // The same runtime can run unguarded work afterwards.
        let out = rt.run(|| crate::endorse(crate::Approx::new(1i64) + 1));
        assert_eq!(out, 2);
    }

    #[test]
    fn panic_message_truncates_on_char_boundary() {
        assert_eq!(panic_message(&"short"), "short");
        let long = "é".repeat(100); // 200 bytes of two-byte chars
        let got = panic_message(&long.clone());
        assert!(got.ends_with('…'));
        assert!(got.len() <= PANIC_MESSAGE_LIMIT + '…'.len_utf8());
        let boxed: Box<dyn std::any::Any + Send> = Box::new(17u32);
        assert_eq!(panic_message(boxed.as_ref()), "<non-string panic payload>");
    }

    #[test]
    fn energy_of_untouched_runtime_is_baseline() {
        let rt = Runtime::new(Level::Aggressive, 0);
        assert!((rt.energy().total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fault_trace_records_injections_in_time_order() {
        use crate::{endorse, Approx};
        let rt = Runtime::new(Level::Aggressive, 3);
        rt.enable_trace(64);
        rt.run(|| {
            let mut acc = Approx::new(0i64);
            for i in 0..5_000 {
                acc += i;
            }
            let _ = endorse(acc);
        });
        let trace = rt.fault_trace();
        assert!(!trace.is_empty(), "aggressive run should record faults");
        assert!(trace.len() as u64 <= rt.stats().faults_injected);
        assert!(trace.windows(2).all(|w| w[0].time <= w[1].time), "events are time-ordered");
    }

    #[test]
    fn trace_is_empty_when_disabled() {
        let rt = Runtime::new(Level::Aggressive, 3);
        rt.run(|| {
            let _ = crate::endorse(crate::Approx::new(1i64) + 1);
        });
        assert!(rt.fault_trace().is_empty());
    }

    #[test]
    fn fault_counters_match_injected_total() {
        use crate::{endorse, Approx};
        let rt = Runtime::new(Level::Aggressive, 3);
        rt.run(|| {
            let mut acc = Approx::new(0i64);
            for i in 0..5_000 {
                acc += i;
            }
            let _ = endorse(acc);
        });
        let counters = rt.fault_counters();
        assert_eq!(counters.total_injections(), rt.stats().faults_injected);
        assert!(!counters.is_empty());
    }

    #[test]
    fn fault_log_collects_and_takes_events() {
        use crate::{endorse, Approx};
        let rt = Runtime::new(Level::Aggressive, 3);
        assert!(rt.take_fault_events().is_empty(), "log off: nothing collected");
        rt.enable_fault_log();
        rt.run(|| {
            let mut acc = Approx::new(0i64);
            for i in 0..5_000 {
                acc += i;
            }
            let _ = endorse(acc);
        });
        let events = rt.take_fault_events();
        assert_eq!(events.len() as u64, rt.stats().faults_injected);
        assert!(rt.take_fault_events().is_empty(), "take drains the log");
    }
}
