//! Heap objects with mixed precise and approximate fields (section 4.1).
//!
//! EnerJ objects can mix `@Precise` and `@Approx` fields; the runtime lays
//! them out so that whole cache lines are either precise or approximate —
//! precise fields (and the vtable header) first, approximate fields after,
//! with approximate fields that share the last precise line getting *no*
//! storage savings (they are "effectively precise" at rest, though still
//! approximate when operated on).
//!
//! [`ApproxRecord`] is the embedded-API rendering: declare a
//! [`RecordSchema`] once, instantiate records under a
//! [`Runtime`](crate::Runtime), and read/write fields with the precision
//! the schema declares. The type system keeps the isolation guarantee:
//! approximate fields come back as [`Approx<T>`] and precise fields as
//! plain `T`.
//!
//! # Examples
//!
//! ```
//! use enerj_core::{endorse, Approx, ApproxRecord, RecordSchema, Runtime};
//! use enerj_hw::config::Level;
//!
//! // @Approximable class Particle { int id; @Approx double x, y; }
//! let schema = RecordSchema::builder("Particle")
//!     .precise_field::<i64>("id")
//!     .approx_field::<f64>("x")
//!     .approx_field::<f64>("y")
//!     .build();
//!
//! let rt = Runtime::new(Level::Mild, 0);
//! rt.run(|| {
//!     let mut p = ApproxRecord::new(&schema);
//!     p.set_precise("id", 7i64);
//!     p.set_approx("x", Approx::new(1.5f64));
//!     assert_eq!(p.get_precise::<i64>("id"), 7);
//!     let x: f64 = endorse(p.get_approx::<f64>("x"));
//!     assert!((x - 1.5).abs() < 0.01);
//! });
//! ```

use std::cell::RefCell;
use std::marker::PhantomData;
use std::rc::Rc;

use crate::approx::Approx;
use crate::prim::ApproxPrim;
use crate::runtime::current_hw;
use enerj_hw::dram::DramRecord;
use enerj_hw::layout::FieldSpec;
use enerj_hw::Hardware;

/// One declared field: name, precision, and primitive width.
#[derive(Debug, Clone)]
struct FieldDecl {
    name: &'static str,
    approx: bool,
    width: u32,
}

/// An immutable description of a record type's fields, in declaration
/// order. Build once with [`RecordSchema::builder`], share across
/// instances.
#[derive(Debug, Clone)]
pub struct RecordSchema {
    name: &'static str,
    fields: Vec<FieldDecl>,
}

/// Builder for [`RecordSchema`].
#[derive(Debug)]
pub struct RecordSchemaBuilder {
    name: &'static str,
    fields: Vec<FieldDecl>,
}

impl RecordSchema {
    /// Starts a schema for a record type called `name`.
    pub fn builder(name: &'static str) -> RecordSchemaBuilder {
        RecordSchemaBuilder { name, fields: Vec::new() }
    }

    /// The record type's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of declared fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    fn index_of(&self, field: &str) -> usize {
        self.fields
            .iter()
            .position(|f| f.name == field)
            .unwrap_or_else(|| panic!("record `{}` has no field `{field}`", self.name))
    }

    fn specs(&self) -> Vec<FieldSpec> {
        self.fields
            .iter()
            .map(|f| FieldSpec::new(f.name, (f.width / 8).max(1) as usize, f.approx))
            .collect()
    }
}

impl RecordSchemaBuilder {
    /// Declares a precise field of primitive type `T`.
    ///
    /// # Panics
    ///
    /// Panics if the name duplicates an earlier field.
    pub fn precise_field<T: ApproxPrim>(self, name: &'static str) -> Self {
        self.push(name, false, T::WIDTH)
    }

    /// Declares an approximate field of primitive type `T`.
    ///
    /// # Panics
    ///
    /// Panics if the name duplicates an earlier field.
    pub fn approx_field<T: ApproxPrim>(self, name: &'static str) -> Self {
        self.push(name, true, T::WIDTH)
    }

    fn push(mut self, name: &'static str, approx: bool, width: u32) -> Self {
        assert!(
            self.fields.iter().all(|f| f.name != name),
            "duplicate field `{name}` on record `{}`",
            self.name
        );
        self.fields.push(FieldDecl { name, approx, width: width.max(8) });
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> RecordSchema {
        RecordSchema { name: self.name, fields: self.fields }
    }
}

/// A DRAM-resident record instance with the section 4.1 field layout.
#[derive(Debug)]
pub struct ApproxRecord {
    schema: RecordSchema,
    rec: DramRecord,
    hw: Rc<RefCell<Hardware>>,
    _not_send: PhantomData<Rc<()>>,
}

impl ApproxRecord {
    /// Allocates a zeroed record in simulated DRAM.
    ///
    /// # Panics
    ///
    /// Panics if no [`Runtime`](crate::Runtime) is installed.
    pub fn new(schema: &RecordSchema) -> Self {
        let hw = current_hw().unwrap_or_else(|| {
            panic!("ApproxRecord requires an installed Runtime; wrap the code in Runtime::run")
        });
        let rec = DramRecord::new(&mut hw.borrow_mut(), &schema.specs());
        ApproxRecord { schema: schema.clone(), rec, hw, _not_send: PhantomData }
    }

    /// Whether `field`'s *storage* ended up on an approximate cache line
    /// (approximate fields absorbed by the last precise line are stored
    /// reliably and save no memory energy — the paper's layout rule).
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist.
    pub fn field_storage_approx(&self, field: &str) -> bool {
        self.rec.field_storage_approx(self.schema.index_of(field))
    }

    /// Reads an approximate field.
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist, is precise, or has a different
    /// primitive type.
    pub fn get_approx<T: ApproxPrim>(&mut self, field: &str) -> Approx<T> {
        let i = self.check::<T>(field, true);
        let bits = self.rec.read(&mut self.hw.borrow_mut(), i);
        Approx::from_raw(T::from_bits64(bits))
    }

    /// Writes an approximate field.
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist, is precise, or has a different
    /// primitive type.
    pub fn set_approx<T: ApproxPrim>(&mut self, field: &str, value: Approx<T>) {
        let i = self.check::<T>(field, true);
        self.rec.write(&mut self.hw.borrow_mut(), i, value.raw().to_bits64());
    }

    /// Reads a precise field.
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist, is approximate, or has a
    /// different primitive type.
    pub fn get_precise<T: ApproxPrim>(&mut self, field: &str) -> T {
        let i = self.check::<T>(field, false);
        T::from_bits64(self.rec.read(&mut self.hw.borrow_mut(), i))
    }

    /// Writes a precise field.
    ///
    /// # Panics
    ///
    /// Panics if the field does not exist, is approximate, or has a
    /// different primitive type.
    pub fn set_precise<T: ApproxPrim>(&mut self, field: &str, value: T) {
        let i = self.check::<T>(field, false);
        self.rec.write(&mut self.hw.borrow_mut(), i, value.to_bits64());
    }

    fn check<T: ApproxPrim>(&self, field: &str, want_approx: bool) -> usize {
        let i = self.schema.index_of(field);
        let decl = &self.schema.fields[i];
        assert_eq!(
            decl.approx,
            want_approx,
            "field `{}.{field}` is {}; use the matching accessor",
            self.schema.name,
            if decl.approx { "approximate" } else { "precise" }
        );
        assert_eq!(
            decl.width,
            T::WIDTH.max(8),
            "field `{}.{field}` has width {}, not {}",
            self.schema.name,
            decl.width,
            T::WIDTH
        );
        i
    }
}

impl Drop for ApproxRecord {
    fn drop(&mut self) {
        self.rec.retire(&mut self.hw.borrow_mut());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endorse;
    use crate::runtime::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact_rt() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    fn particle() -> RecordSchema {
        RecordSchema::builder("Particle")
            .precise_field::<i64>("id")
            .approx_field::<f64>("x")
            .approx_field::<f64>("y")
            .approx_field::<f64>("vx")
            .approx_field::<f64>("vy")
            .build()
    }

    #[test]
    fn roundtrips_both_precisions() {
        let rt = exact_rt();
        rt.run(|| {
            let schema = particle();
            let mut p = ApproxRecord::new(&schema);
            p.set_precise("id", 42i64);
            p.set_approx("x", Approx::new(1.5f64));
            p.set_approx("vy", Approx::new(-9.81f64));
            assert_eq!(p.get_precise::<i64>("id"), 42);
            assert_eq!(endorse(p.get_approx::<f64>("x")), 1.5);
            assert_eq!(endorse(p.get_approx::<f64>("vy")), -9.81);
        });
    }

    #[test]
    fn small_records_get_no_approximate_storage() {
        // Header 8 + id 8 = 16 precise bytes; 4 approximate doubles fit in
        // the remaining 48 bytes of the first line: all effectively precise.
        let rt = exact_rt();
        rt.run(|| {
            let schema = particle();
            let p = ApproxRecord::new(&schema);
            for f in ["x", "y", "vx", "vy"] {
                assert!(!p.field_storage_approx(f), "{f} should share the precise line");
            }
        });
    }

    #[test]
    fn large_records_split_across_lines() {
        let rt = exact_rt();
        rt.run(|| {
            let mut builder = RecordSchema::builder("Big").precise_field::<i64>("id");
            for name in ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"] {
                builder = builder.approx_field::<f64>(name);
            }
            let schema = builder.build();
            let p = ApproxRecord::new(&schema);
            let approx_fields = (0..10)
                .filter(|i| {
                    p.field_storage_approx(
                        ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"][*i],
                    )
                })
                .count();
            assert_eq!(approx_fields, 4, "6 of 10 absorbed by the precise line");
        });
    }

    #[test]
    fn storage_accounting_happens_on_drop() {
        let rt = exact_rt();
        rt.run(|| {
            let mut builder = RecordSchema::builder("Big").precise_field::<i64>("id");
            for name in ["a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"] {
                builder = builder.approx_field::<f64>(name);
            }
            let schema = builder.build();
            let mut p = ApproxRecord::new(&schema);
            p.set_precise("id", 1i64);
            drop(p);
        });
        let s = rt.stats();
        assert!(!s.dram_approx_quanta.is_zero());
        assert!(!s.dram_precise_quanta.is_zero());
    }

    #[test]
    #[should_panic(expected = "is approximate")]
    fn precision_mismatch_is_a_static_like_error() {
        let rt = exact_rt();
        rt.run(|| {
            let schema = particle();
            let mut p = ApproxRecord::new(&schema);
            // Reading an approximate field precisely is the forbidden flow.
            let _ = p.get_precise::<f64>("x");
        });
    }

    #[test]
    #[should_panic(expected = "no field")]
    fn unknown_fields_are_rejected() {
        let rt = exact_rt();
        rt.run(|| {
            let schema = particle();
            let mut p = ApproxRecord::new(&schema);
            let _ = p.get_precise::<i64>("nope");
        });
    }

    #[test]
    #[should_panic(expected = "duplicate field")]
    fn duplicate_fields_are_rejected() {
        let _ = RecordSchema::builder("Bad").precise_field::<i64>("x").approx_field::<f64>("x");
    }
}
