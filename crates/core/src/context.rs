//! Qualifier polymorphism: `@Approximable` classes, `@Context` data and
//! algorithmic approximation (section 2.5).
//!
//! An EnerJ `@Approximable` class can have precise and approximate
//! instances; `@Context`-qualified members inherit the instance's precision,
//! and methods may be overloaded on the receiver's precision (`_APPROX`
//! methods). The Rust embedding expresses the class qualifier parameter as a
//! type parameter `M: Mode`:
//!
//! ```
//! use enerj_core::context::{ApproxMode, Ctx, Mode, PreciseMode};
//! use enerj_core::{endorse_ctx, Runtime};
//! use enerj_hw::config::Level;
//!
//! // @Approximable class IntPair { @Context int x; @Context int y; }
//! struct IntPair<M: Mode> {
//!     x: Ctx<i32, M>,
//!     y: Ctx<i32, M>,
//! }
//!
//! impl<M: Mode> IntPair<M> {
//!     fn add_to_both(&mut self, amount: Ctx<i32, M>) {
//!         self.x += amount;
//!         self.y += amount;
//!     }
//! }
//!
//! let rt = Runtime::new(Level::Mild, 0);
//! rt.run(|| {
//!     // An approximate instance: fields are approximate.
//!     let mut a = IntPair::<ApproxMode> { x: Ctx::new(1), y: Ctx::new(2) };
//!     a.add_to_both(Ctx::new(10));
//!     // A precise instance of the same class: fields are precise.
//!     let mut p = IntPair::<PreciseMode> { x: Ctx::new(1), y: Ctx::new(2) };
//!     p.add_to_both(Ctx::new(10));
//!     assert_eq!(p.x.into_precise(), 11); // precise projection: no endorsement
//!     let _ = endorse_ctx(a.x); // approximate projection needs an endorsement
//! });
//! ```
//!
//! Algorithmic approximation (section 2.5.2) is method selection on `M`:
//! implement a trait for `YourType<PreciseMode>` with the exact algorithm
//! and for `YourType<ApproxMode>` with the cheap one; the compiler selects
//! statically, exactly like EnerJ's `_APPROX` naming convention.

use std::marker::PhantomData;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::approx::{endorse, Approx};
use crate::precise::Precise;
use crate::prim::{ApproxArith, ApproxPrim};

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::PreciseMode {}
    impl Sealed for super::ApproxMode {}
}

/// The precision of an approximable class instance (its qualifier
/// parameter). Sealed: the only modes are [`PreciseMode`] and [`ApproxMode`].
pub trait Mode: sealed::Sealed + Copy + std::fmt::Debug + 'static {
    /// Whether `@Context` data in this instance is approximate.
    const APPROX: bool;
}

/// The qualifier of precise instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreciseMode;

/// The qualifier of approximate instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ApproxMode;

impl Mode for PreciseMode {
    const APPROX: bool = false;
}

impl Mode for ApproxMode {
    const APPROX: bool = true;
}

/// A `@Context`-qualified primitive: precise in precise instances,
/// approximate in approximate instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct Ctx<T: ApproxPrim, M: Mode>(T, PhantomData<M>);

impl<T: ApproxPrim, M: Mode> Ctx<T, M> {
    /// Wraps a precise value (allowed in both modes by subtyping).
    pub fn new(value: T) -> Self {
        if M::APPROX {
            Ctx(endorse(Approx::new(value)), PhantomData)
        } else {
            Ctx(value, PhantomData)
        }
    }
}

impl<T: ApproxPrim> Ctx<T, PreciseMode> {
    /// Projects a precise-context value; no endorsement required.
    pub fn into_precise(self) -> T {
        self.0
    }
}

impl<T: ApproxPrim> Ctx<T, ApproxMode> {
    /// Views an approximate-context value as `Approx` (same qualifier).
    pub fn to_approx(self) -> Approx<T> {
        Approx::new(self.0)
    }
}

impl<T: ApproxPrim> From<Approx<T>> for Ctx<T, ApproxMode> {
    fn from(value: Approx<T>) -> Self {
        Ctx(endorse(value), PhantomData)
    }
}

impl<T: ApproxPrim> From<Precise<T>> for Ctx<T, PreciseMode> {
    fn from(value: Precise<T>) -> Self {
        Ctx(value.get(), PhantomData)
    }
}

/// Endorses an approximate-context value (section 2.2). Precise-context
/// values use [`Ctx::into_precise`] instead — no endorsement is needed.
pub fn endorse_ctx<T: ApproxPrim>(value: Ctx<T, ApproxMode>) -> T {
    endorse(value.to_approx())
}

macro_rules! impl_ctx_binop {
    ($trait:ident, $method:ident, $arith:ident) => {
        impl<T: ApproxArith + $trait<Output = T>, M: Mode> $trait for Ctx<T, M> {
            type Output = Ctx<T, M>;
            fn $method(self, rhs: Ctx<T, M>) -> Ctx<T, M> {
                if M::APPROX {
                    let out = crate::approx::Approx::new(self.0)
                        .$method(crate::approx::Approx::new(rhs.0));
                    Ctx(endorse(out), PhantomData)
                } else {
                    Ctx((Precise::new(self.0).$method(rhs.0)).get(), PhantomData)
                }
            }
        }
        impl<T: ApproxArith + $trait<Output = T>, M: Mode> $trait<T> for Ctx<T, M> {
            type Output = Ctx<T, M>;
            fn $method(self, rhs: T) -> Ctx<T, M> {
                self.$method(Ctx::<T, M>::new(rhs))
            }
        }
    };
}

impl_ctx_binop!(Add, add, approx_add);
impl_ctx_binop!(Sub, sub, approx_sub);
impl_ctx_binop!(Mul, mul, approx_mul);
impl_ctx_binop!(Div, div, approx_div);

macro_rules! impl_ctx_assign {
    ($trait:ident, $method:ident, $base:ident, $op:tt) => {
        impl<T: ApproxArith + $base<Output = T>, M: Mode> $trait for Ctx<T, M> {
            fn $method(&mut self, rhs: Ctx<T, M>) {
                *self = *self $op rhs;
            }
        }
        impl<T: ApproxArith + $base<Output = T>, M: Mode> $trait<T> for Ctx<T, M> {
            fn $method(&mut self, rhs: T) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_ctx_assign!(AddAssign, add_assign, Add, +);
impl_ctx_assign!(SubAssign, sub_assign, Sub, -);
impl_ctx_assign!(MulAssign, mul_assign, Mul, *);
impl_ctx_assign!(DivAssign, div_assign, Div, /);

impl<T: ApproxArith + Neg<Output = T>, M: Mode> Neg for Ctx<T, M> {
    type Output = Ctx<T, M>;
    fn neg(self) -> Ctx<T, M> {
        if M::APPROX {
            Ctx(endorse(-Approx::new(self.0)), PhantomData)
        } else {
            Ctx((-Precise::new(self.0)).get(), PhantomData)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact_rt() -> Runtime {
        let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
        Runtime::with_config(cfg, 0)
    }

    #[test]
    fn context_ops_route_to_the_instance_qualifier() {
        let rt = exact_rt();
        rt.run(|| {
            let a: Ctx<i32, ApproxMode> = Ctx::new(5);
            let p: Ctx<i32, PreciseMode> = Ctx::new(5);
            let _ = a + a;
            let _ = p + p;
        });
        let s = rt.stats();
        assert_eq!(s.int_approx_ops, 1, "approximate instance uses the approx unit");
        assert_eq!(s.int_precise_ops, 1, "precise instance uses the precise unit");
    }

    #[test]
    fn precise_projection_needs_no_endorsement() {
        let p: Ctx<i32, PreciseMode> = Ctx::new(9);
        assert_eq!((p * 2).into_precise(), 18);
    }

    #[test]
    fn approx_projection_requires_endorse() {
        let rt = exact_rt();
        rt.run(|| {
            let a: Ctx<f64, ApproxMode> = Ctx::new(2.0);
            assert_eq!(endorse_ctx(a * 3.0), 6.0);
        });
    }

    /// The paper's FloatSet example (section 2.5.2): `mean` overloaded on
    /// the receiver's precision, with the approximate version averaging
    /// every other element.
    struct FloatSet<M: Mode> {
        nums: Vec<f32>,
        _mode: PhantomData<M>,
    }

    trait MeanOp {
        fn mean(&self) -> f32;
    }

    impl MeanOp for FloatSet<PreciseMode> {
        fn mean(&self) -> f32 {
            let mut total = Precise::new(0.0f32);
            for &x in &self.nums {
                total += x;
            }
            (total / self.nums.len() as f32).get()
        }
    }

    impl MeanOp for FloatSet<ApproxMode> {
        fn mean(&self) -> f32 {
            let mut total = Approx::new(0.0f32);
            let mut i = 0;
            while i < self.nums.len() {
                total += self.nums[i];
                i += 2;
            }
            endorse(2.0 * total / self.nums.len() as f32)
        }
    }

    #[test]
    fn algorithmic_approximation_selects_by_mode() {
        let rt = exact_rt();
        rt.run(|| {
            let nums = vec![1.0f32, 100.0, 3.0, 100.0];
            let precise = FloatSet::<PreciseMode> { nums: nums.clone(), _mode: PhantomData };
            let approx = FloatSet::<ApproxMode> { nums, _mode: PhantomData };
            assert_eq!(precise.mean(), 51.0);
            // Approximate mean skips the 100s: (1 + 3) * 2 / 4 = 2.
            assert_eq!(approx.mean(), 2.0);
        });
        let s = rt.stats();
        assert!(s.fp_approx_ops > 0 && s.fp_precise_ops > 0);
    }
}
