//! The `@Approx` qualifier: approximate values with enforced isolation.
//!
//! [`Approx<T>`] is the Rust rendering of EnerJ's `@Approx T`. The embedding
//! reproduces the paper's static guarantees with the host type system:
//!
//! * **No implicit approximate→precise flow** (section 2.1): there is no
//!   safe projection from `Approx<T>` to `T` other than [`endorse`], the
//!   explicit cast of section 2.2.
//! * **Precise→approximate flow via subtyping** (section 2.1): `From<T>`
//!   and mixed-operand operators accept precise values wherever approximate
//!   ones are expected.
//! * **No implicit control flow on approximate data** (section 2.4):
//!   `Approx<T>` deliberately implements neither `PartialEq` nor
//!   `PartialOrd`; comparisons return `Approx<bool>`, which cannot drive an
//!   `if` without an endorsement.
//!
//! Operationally, every use of an approximate value models the proposed
//! hardware (section 4): operands are read from approximate SRAM (read
//! upsets), floating-point operands lose mantissa width, the operation
//! executes on a voltage-scaled unit (timing errors), and the result is
//! written back to approximate SRAM (write failures). Without an installed
//! [`Runtime`](crate::Runtime), operations execute precisely — the
//! "plain Java" reading of an EnerJ program.

use std::ops::{
    Add, AddAssign, BitAnd, BitOr, BitXor, Div, DivAssign, Mul, MulAssign, Neg, Rem, RemAssign,
    Shl, Shr, Sub, SubAssign,
};

use crate::prim::{ApproxArith, ApproxBits, ApproxPrim};
use crate::runtime::with_hw;
use enerj_hw::Hardware;

/// An approximate value of primitive type `T` (EnerJ's `@Approx T`).
///
/// # Examples
///
/// ```
/// use enerj_core::{endorse, Approx, Runtime};
/// use enerj_hw::config::Level;
///
/// let rt = Runtime::new(Level::Medium, 0);
/// let result = rt.run(|| {
///     let a = Approx::new(1.5f64);
///     let b = a * 2.0; // precise operand flows in via subtyping
///     endorse(b)
/// });
/// assert!((result - 3.0).abs() < 0.1 || result.is_nan());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Approx<T: ApproxPrim>(T);

impl<T: ApproxPrim> Approx<T> {
    /// Stores a value into approximate state. The store itself is an
    /// approximate SRAM write and may fail bits.
    pub fn new(value: T) -> Self {
        Approx(sram_store(value))
    }

    /// Wraps a value without an SRAM store (crate-internal: used for
    /// DRAM-to-unit transfers that bypass the register file).
    pub(crate) fn from_raw(value: T) -> Self {
        Approx(value)
    }

    /// The raw bits without an endorsement (crate-internal: used for
    /// unit-to-DRAM transfers that bypass the register file).
    pub(crate) fn raw(self) -> T {
        self.0
    }

    /// Endorses this value: the explicit approximate→precise cast of
    /// section 2.2. Equivalent to the free function [`endorse`].
    pub fn endorse(self) -> T {
        endorse(self)
    }

    /// Approximate equality test, yielding an approximate boolean.
    pub fn eq_approx(self, rhs: impl Into<Approx<T>>) -> Approx<bool> {
        cmp_op(self, rhs.into(), |a, b| a == b)
    }

    /// Approximate inequality test, yielding an approximate boolean.
    pub fn ne_approx(self, rhs: impl Into<Approx<T>>) -> Approx<bool> {
        cmp_op(self, rhs.into(), |a, b| a != b)
    }
}

impl<T: ApproxPrim + PartialOrd> Approx<T> {
    /// Approximate less-than test, yielding an approximate boolean.
    pub fn lt_approx(self, rhs: impl Into<Approx<T>>) -> Approx<bool> {
        cmp_op(self, rhs.into(), |a, b| a < b)
    }

    /// Approximate less-or-equal test, yielding an approximate boolean.
    pub fn le_approx(self, rhs: impl Into<Approx<T>>) -> Approx<bool> {
        cmp_op(self, rhs.into(), |a, b| a <= b)
    }

    /// Approximate greater-than test, yielding an approximate boolean.
    pub fn gt_approx(self, rhs: impl Into<Approx<T>>) -> Approx<bool> {
        cmp_op(self, rhs.into(), |a, b| a > b)
    }

    /// Approximate greater-or-equal test, yielding an approximate boolean.
    pub fn ge_approx(self, rhs: impl Into<Approx<T>>) -> Approx<bool> {
        cmp_op(self, rhs.into(), |a, b| a >= b)
    }
}

macro_rules! impl_approx_widen {
    ($(($from:ty, $to:ty, $name:ident)),* $(,)?) => {$(
        impl Approx<$from> {
            /// Widens to a larger approximate type. Both sides carry the
            /// `@Approx` qualifier, so no endorsement is involved; the
            /// conversion is a register move and costs no simulated energy.
            pub fn $name(self) -> Approx<$to> {
                Approx::from_raw(self.0 as $to)
            }
        }
    )*};
}

impl_approx_widen! {
    (u8, i32, widen_i32),
    (u8, f32, widen_f32_from_u8),
    (i8, i32, widen_i32_from_i8),
    (i16, i32, widen_i32_from_i16),
    (i32, i64, widen_i64),
    (i32, f64, widen_f64_from_i32),
    (f32, f64, widen_f64),
}

/// Endorses an approximate value, certifying that the surrounding precise
/// code handles it intelligently (section 2.2).
///
/// The endorsement itself performs a final approximate SRAM read — an
/// endorsement "may have implicit runtime effects; it might copy values from
/// approximate to precise memory."
pub fn endorse<T: ApproxPrim>(value: Approx<T>) -> T {
    with_hw(|hw| match hw {
        Some(hw) => sram_load(hw, value.0),
        None => value.0,
    })
}

/// Precise values flow into approximate types freely (primitive subtyping,
/// section 2.1).
impl<T: ApproxPrim> From<T> for Approx<T> {
    fn from(value: T) -> Self {
        Approx::new(value)
    }
}

/// Reads a value from approximate SRAM under an installed runtime.
fn sram_load<T: ApproxPrim>(hw: &mut Hardware, x: T) -> T {
    T::from_bits64(hw.sram_read(x.to_bits64(), T::WIDTH, true))
}

/// Writes a value to approximate SRAM, if a runtime is installed.
fn sram_store<T: ApproxPrim>(x: T) -> T {
    with_hw(|hw| match hw {
        Some(hw) => T::from_bits64(hw.sram_write(x.to_bits64(), T::WIDTH, true)),
        None => x,
    })
}

/// The common path of every approximate binary operation.
fn binop<T: ApproxPrim>(lhs: Approx<T>, rhs: Approx<T>, f: fn(T, T) -> T) -> Approx<T> {
    with_hw(|hw| match hw {
        Some(hw) => {
            let a = sram_load(hw, lhs.0);
            let a = T::condition_operand(hw, a);
            let b = sram_load(hw, rhs.0);
            let b = T::condition_operand(hw, b);
            let raw = f(a, b);
            // Results are forwarded to their consumer without a register-
            // file round trip; write failures apply at explicit stores
            // (`Approx::new`), matching the paper's negligible Mild error.
            Approx(T::unit_result(hw, raw))
        }
        None => Approx(f(lhs.0, rhs.0)),
    })
}

/// The common path of approximate comparisons.
fn cmp_op<T: ApproxPrim>(lhs: Approx<T>, rhs: Approx<T>, pred: fn(T, T) -> bool) -> Approx<bool> {
    with_hw(|hw| match hw {
        Some(hw) => {
            let a = sram_load(hw, lhs.0);
            let a = T::condition_operand(hw, a);
            let b = sram_load(hw, rhs.0);
            let b = T::condition_operand(hw, b);
            let raw = pred(a, b);
            Approx(hw.approx_cmp_result(raw, T::OP_KIND))
        }
        None => Approx(pred(lhs.0, rhs.0)),
    })
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $arith:ident) => {
        impl<T: ApproxArith> $trait for Approx<T> {
            type Output = Approx<T>;
            fn $method(self, rhs: Approx<T>) -> Approx<T> {
                binop(self, rhs, T::$arith)
            }
        }

        // Mixed operands: a precise right-hand side is upcast via subtyping,
        // and per the bidirectional-typing rule (section 2.3) the operation
        // still executes approximately because its result is approximate.
        impl<T: ApproxArith> $trait<T> for Approx<T> {
            type Output = Approx<T>;
            fn $method(self, rhs: T) -> Approx<T> {
                binop(self, Approx::new(rhs), T::$arith)
            }
        }
    };
}

impl_binop!(Add, add, approx_add);
impl_binop!(Sub, sub, approx_sub);
impl_binop!(Mul, mul, approx_mul);
impl_binop!(Div, div, approx_div);
impl_binop!(Rem, rem, approx_rem);

macro_rules! impl_bitop {
    ($trait:ident, $method:ident, $arith:ident) => {
        impl<T: ApproxBits> $trait for Approx<T> {
            type Output = Approx<T>;
            fn $method(self, rhs: Approx<T>) -> Approx<T> {
                binop(self, rhs, T::$arith)
            }
        }
        impl<T: ApproxBits> $trait<T> for Approx<T> {
            type Output = Approx<T>;
            fn $method(self, rhs: T) -> Approx<T> {
                binop(self, Approx::new(rhs), T::$arith)
            }
        }
    };
}

impl_bitop!(BitAnd, bitand, approx_and);
impl_bitop!(BitOr, bitor, approx_or);
impl_bitop!(BitXor, bitxor, approx_xor);

// Shifts take a precise `u32` amount — shift distances, like array
// indices, steer which bits land where and are kept precise.
impl<T: ApproxBits> Shl<u32> for Approx<T> {
    type Output = Approx<T>;
    fn shl(self, amount: u32) -> Approx<T> {
        shift(self, amount, T::approx_shl)
    }
}

impl<T: ApproxBits> Shr<u32> for Approx<T> {
    type Output = Approx<T>;
    fn shr(self, amount: u32) -> Approx<T> {
        shift(self, amount, T::approx_shr)
    }
}

fn shift<T: ApproxBits>(lhs: Approx<T>, amount: u32, f: fn(T, u32) -> T) -> Approx<T> {
    with_hw(|hw| match hw {
        Some(hw) => {
            let a = sram_load(hw, lhs.0);
            Approx(T::unit_result(hw, f(a, amount)))
        }
        None => Approx(f(lhs.0, amount)),
    })
}

macro_rules! impl_binop_lhs_precise {
    ($($t:ty),* $(,)?) => {$(
        impl Add<Approx<$t>> for $t {
            type Output = Approx<$t>;
            fn add(self, rhs: Approx<$t>) -> Approx<$t> {
                Approx::new(self) + rhs
            }
        }
        impl Sub<Approx<$t>> for $t {
            type Output = Approx<$t>;
            fn sub(self, rhs: Approx<$t>) -> Approx<$t> {
                Approx::new(self) - rhs
            }
        }
        impl Mul<Approx<$t>> for $t {
            type Output = Approx<$t>;
            fn mul(self, rhs: Approx<$t>) -> Approx<$t> {
                Approx::new(self) * rhs
            }
        }
        impl Div<Approx<$t>> for $t {
            type Output = Approx<$t>;
            fn div(self, rhs: Approx<$t>) -> Approx<$t> {
                Approx::new(self) / rhs
            }
        }
        impl Rem<Approx<$t>> for $t {
            type Output = Approx<$t>;
            fn rem(self, rhs: Approx<$t>) -> Approx<$t> {
                Approx::new(self) % rhs
            }
        }
    )*};
}

impl_binop_lhs_precise!(i8, i16, i32, i64, u8, u16, u32, u64, f32, f64);

macro_rules! impl_assign {
    ($trait:ident, $method:ident, $op:tt) => {
        impl<T: ApproxArith> $trait for Approx<T> {
            fn $method(&mut self, rhs: Approx<T>) {
                *self = *self $op rhs;
            }
        }
        impl<T: ApproxArith> $trait<T> for Approx<T> {
            fn $method(&mut self, rhs: T) {
                *self = *self $op rhs;
            }
        }
    };
}

impl_assign!(AddAssign, add_assign, +);
impl_assign!(SubAssign, sub_assign, -);
impl_assign!(MulAssign, mul_assign, *);
impl_assign!(DivAssign, div_assign, /);
impl_assign!(RemAssign, rem_assign, %);

impl<T: ApproxArith> Neg for Approx<T> {
    type Output = Approx<T>;
    fn neg(self) -> Approx<T> {
        with_hw(|hw| match hw {
            Some(hw) => {
                let a = sram_load(hw, self.0);
                let a = T::condition_operand(hw, a);
                Approx(T::unit_result(hw, T::approx_neg(a)))
            }
            None => Approx(T::approx_neg(self.0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact_rt() -> Runtime {
        // All strategies masked off: approximate ops run exactly but are
        // still counted as approximate.
        let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
        Runtime::with_config(cfg, 0)
    }

    #[test]
    fn without_runtime_ops_are_precise() {
        let a = Approx::new(6i32);
        let b = Approx::new(7i32);
        assert_eq!(endorse(a * b), 42);
        assert_eq!(endorse(-a), -6);
        assert!(endorse(a.lt_approx(b)));
    }

    #[test]
    fn masked_runtime_counts_but_does_not_corrupt() {
        let rt = exact_rt();
        let out = rt.run(|| {
            let mut acc = Approx::new(0i64);
            for i in 0..100 {
                acc += i;
            }
            endorse(acc)
        });
        assert_eq!(out, 4950);
        assert_eq!(rt.stats().int_approx_ops, 100);
        assert_eq!(rt.stats().faults_injected, 0);
    }

    #[test]
    fn mixed_operand_ops_compile_and_count_once() {
        let rt = exact_rt();
        let out = rt.run(|| {
            let a = Approx::new(2.0f64);
            endorse(3.0 * a + 1.0)
        });
        assert_eq!(out, 7.0);
        assert_eq!(rt.stats().fp_approx_ops, 2);
    }

    #[test]
    fn comparisons_yield_approx_bool() {
        let rt = exact_rt();
        rt.run(|| {
            let a = Approx::new(3i32);
            assert!(endorse(a.le_approx(3)));
            assert!(!endorse(a.gt_approx(5)));
            assert!(endorse(a.eq_approx(3)));
            assert!(endorse(a.ne_approx(4)));
            assert!(endorse(a.ge_approx(Approx::new(2))));
            assert!(!endorse(a.lt_approx(1)));
        });
        // 6 comparisons on the integer unit.
        assert_eq!(rt.stats().int_approx_ops, 6);
    }

    #[test]
    fn approx_div_by_zero_never_traps() {
        let rt = exact_rt();
        rt.run(|| {
            let z = Approx::new(0i32);
            assert_eq!(endorse(Approx::new(7) / z), 0);
            assert_eq!(endorse(Approx::new(7) % z), 0);
            let fz = Approx::new(0.0f32);
            assert!(endorse(Approx::new(7.0f32) / fz).is_nan());
        });
    }

    #[test]
    fn aggressive_fp_ops_lose_mantissa_precision() {
        let cfg = HwConfig::for_level(Level::Aggressive)
            .with_mask(StrategyMask::NONE.with_fp_width(true));
        let rt = Runtime::with_config(cfg, 0);
        let out = rt.run(|| {
            let a = Approx::new(1.001f64);
            endorse(a * 1.0)
        });
        // With 8 mantissa bits the .001 is lost.
        assert_eq!(out, 1.0);
    }

    #[test]
    fn aggressive_runtime_eventually_faults() {
        let rt = Runtime::new(Level::Aggressive, 123);
        rt.run(|| {
            let mut acc = Approx::new(0i64);
            for i in 0..10_000 {
                acc += i;
            }
            let _ = endorse(acc);
        });
        assert!(rt.stats().faults_injected > 0, "aggressive run should fault");
    }

    #[test]
    fn sram_storage_is_accounted_as_approximate() {
        let rt = exact_rt();
        rt.run(|| {
            let a = Approx::new(1i64);
            let _ = a + a;
        });
        let s = rt.stats();
        assert!(!s.sram_approx_quanta.is_zero());
        assert!(s.sram_precise_quanta.is_zero());
    }

    #[test]
    fn endorsement_returns_plain_value_usable_in_conditions() {
        let rt = exact_rt();
        let out = rt.run(|| {
            let x = Approx::new(10i32);
            // The paper's idiom: if (endorse(val == 5)) { ... }
            if endorse(x.eq_approx(5)) {
                1
            } else {
                0
            }
        });
        assert_eq!(out, 0);
    }

    #[test]
    fn default_is_zero() {
        let z: Approx<f64> = Approx::default();
        assert_eq!(endorse(z), 0.0);
    }

    #[test]
    fn bitwise_ops_compute_exactly_when_masked() {
        let rt = exact_rt();
        rt.run(|| {
            let a = Approx::new(0b1100u32);
            let b = Approx::new(0b1010u32);
            assert_eq!(endorse(a & b), 0b1000);
            assert_eq!(endorse(a | b), 0b1110);
            assert_eq!(endorse(a ^ b), 0b0110);
            assert_eq!(endorse(a << 2), 0b110000);
            assert_eq!(endorse(a >> 1), 0b0110);
            // Mixed operands via subtyping.
            assert_eq!(endorse(a & 0b0100u32), 0b0100);
        });
        assert_eq!(rt.stats().int_approx_ops, 6);
    }

    #[test]
    fn shifts_mask_their_amount_like_hardware() {
        // Shifting a 32-bit value by 33 behaves like shifting by 1: the
        // shifter masks the amount, and never traps.
        let rt = exact_rt();
        rt.run(|| {
            let a = Approx::new(0b10u32);
            assert_eq!(endorse(a << 33), 0b100);
            assert_eq!(endorse(a >> 33), 0b1);
        });
    }

    #[test]
    fn widening_preserves_values_and_costs_nothing() {
        let rt = exact_rt();
        rt.run(|| {
            assert_eq!(endorse(Approx::new(200u8).widen_i32()), 200);
            assert_eq!(endorse(Approx::new(-5i8).widen_i32_from_i8()), -5);
            assert_eq!(endorse(Approx::new(-300i16).widen_i32_from_i16()), -300);
            assert_eq!(endorse(Approx::new(7i32).widen_i64()), 7);
            assert_eq!(endorse(Approx::new(3i32).widen_f64_from_i32()), 3.0);
            assert_eq!(endorse(Approx::new(1.5f32).widen_f64()), 1.5);
        });
        // Widening is a register move: no operations charged.
        assert_eq!(rt.stats().int_approx_ops, 0);
        assert_eq!(rt.stats().fp_approx_ops, 0);
    }
}
