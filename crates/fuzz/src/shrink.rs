//! Delta-debugging shrinker for counterexample programs.
//!
//! Given a source program and a failure predicate, [`shrink_source`]
//! greedily applies size-reducing edits — dropping whole classes, methods,
//! and fields, hoisting sub-expressions over their parents (`a; b` → `b`,
//! `let x = v in b` → `b`, `if (c) { t } else { f }` → `t`, …), and
//! collapsing arbitrary expressions to literals — keeping an edit only
//! when the shrunk program still satisfies the predicate. The result is a
//! locally-minimal program: no single catalogued edit can make it smaller
//! while preserving the failure.
//!
//! The predicate receives *source text* (the candidate is pretty-printed
//! before every check), so it can rerun any stage of the pipeline —
//! parsing, typechecking, interpretation, or a full oracle — and the
//! minimized program is guaranteed to be replayable from its printed form.

use crate::mutate::{for_each_expr, replace_node};
use enerj_lang::ast::{Expr, ExprKind, NodeId, Program};
use enerj_lang::parser::parse;
use enerj_lang::pretty::program_to_string;

/// One size-reducing rewrite of a [`Program`].
enum Edit {
    RemoveClass(usize),
    RemoveMethod(usize, usize),
    RemoveField(usize, usize),
    /// Replace the node by its `i`-th child.
    Hoist(NodeId, usize),
    /// Replace the node by a literal (`0`, `0.0`, or `null`).
    Lit(NodeId, ExprKind),
}

/// Minimizes `source` while `fails` keeps returning `true`, spending at
/// most `max_checks` predicate evaluations.
///
/// Returns the smallest failing source found (the original source if it
/// does not parse, or if its pretty-printed form no longer fails).
pub fn shrink_source(source: &str, fails: &dyn Fn(&str) -> bool, max_checks: usize) -> String {
    let Ok(mut prog) = parse(source) else {
        return source.to_string();
    };
    let mut best = program_to_string(&prog);
    if !fails(&best) {
        return source.to_string();
    }
    let mut checks = 0usize;
    loop {
        let mut improved = false;
        for edit in edits(&prog) {
            if checks >= max_checks {
                return best;
            }
            let cand = apply(&prog, &edit);
            let cand_src = program_to_string(&cand);
            if cand_src.len() >= best.len() {
                continue;
            }
            checks += 1;
            if fails(&cand_src) {
                prog = cand;
                best = cand_src;
                improved = true;
                break;
            }
        }
        if !improved {
            return best;
        }
    }
}

/// Every candidate edit of `p`, largest-reduction first.
fn edits(p: &Program) -> Vec<Edit> {
    let mut out = Vec::new();
    for ci in 0..p.classes.len() {
        out.push(Edit::RemoveClass(ci));
    }
    for (ci, class) in p.classes.iter().enumerate() {
        for mi in 0..class.methods.len() {
            out.push(Edit::RemoveMethod(ci, mi));
        }
        for fi in 0..class.fields.len() {
            out.push(Edit::RemoveField(ci, fi));
        }
    }
    for_each_expr(p, &mut |e| {
        for (i, _) in children(e).iter().enumerate() {
            out.push(Edit::Hoist(e.id, i));
        }
        match &e.kind {
            ExprKind::IntLit(0) | ExprKind::FloatLit(_) | ExprKind::Null => {}
            ExprKind::IntLit(_) => out.push(Edit::Lit(e.id, ExprKind::IntLit(0))),
            _ => {
                out.push(Edit::Lit(e.id, ExprKind::IntLit(0)));
                out.push(Edit::Lit(e.id, ExprKind::FloatLit(0.0)));
                out.push(Edit::Lit(e.id, ExprKind::Null));
            }
        }
    });
    out
}

fn children(e: &Expr) -> Vec<&Expr> {
    match &e.kind {
        ExprKind::Null
        | ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::Var(_)
        | ExprKind::This
        | ExprKind::New(_) => vec![],
        ExprKind::NewArray(_, a)
        | ExprKind::Length(a)
        | ExprKind::FieldGet(a, _)
        | ExprKind::Cast(_, a)
        | ExprKind::VarSet(_, a)
        | ExprKind::Endorse(a) => vec![a],
        ExprKind::Index(a, b)
        | ExprKind::FieldSet(a, _, b)
        | ExprKind::Binary(_, a, b)
        | ExprKind::Let(_, a, b)
        | ExprKind::While(a, b)
        | ExprKind::Seq(a, b) => vec![a, b],
        ExprKind::IndexSet(a, b, c) | ExprKind::If(a, b, c) => vec![a, b, c],
        ExprKind::Call(r, _, args) => {
            let mut v = vec![&**r];
            v.extend(args.iter());
            v
        }
    }
}

fn apply(p: &Program, edit: &Edit) -> Program {
    match edit {
        Edit::RemoveClass(ci) => {
            let mut p = p.clone();
            p.classes.remove(*ci);
            p
        }
        Edit::RemoveMethod(ci, mi) => {
            let mut p = p.clone();
            p.classes[*ci].methods.remove(*mi);
            p
        }
        Edit::RemoveField(ci, fi) => {
            let mut p = p.clone();
            p.classes[*ci].fields.remove(*fi);
            p
        }
        Edit::Hoist(id, i) => replace_node(p, *id, &|old| children(old)[*i].clone()),
        Edit::Lit(id, kind) => {
            replace_node(p, *id, &|old| Expr { id: old.id, span: old.span, kind: kind.clone() })
        }
    }
}
