//! Seeded conformance-fuzzing campaigns for the FEnerJ pipeline.
//!
//! ```text
//! fuzzgen [--cases N] [--seed S] [--chaos-seeds K] [--endorse-free]
//!         [--max-classes N] [--shrink] [--corpus DIR] [--quiet]
//! ```
//!
//! Generates `N` well-typed programs from consecutive seeds starting at
//! `S`, runs the five differential oracles on each (see `enerj_fuzz`
//! documentation), and reports a summary. Exits nonzero if any oracle was
//! violated. With `--shrink`, every violating program is minimized by
//! delta debugging before being reported; with `--corpus DIR`, minimized
//! counterexamples are saved as replayable `.fej` files.

use std::process::ExitCode;

use enerj_fuzz::gen::GenConfig;
use enerj_fuzz::oracle::{run_case, violation_fails, OracleOpts, Violation};
use enerj_fuzz::shrink::shrink_source;

const SHRINK_BUDGET: usize = 500;

struct Args {
    cases: u64,
    seed: u64,
    chaos_seeds: u64,
    endorse_free: bool,
    max_classes: usize,
    shrink: bool,
    corpus: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cases: 100,
        seed: 1,
        chaos_seeds: 3,
        endorse_free: false,
        max_classes: GenConfig::default().max_classes,
        shrink: false,
        corpus: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--cases" => args.cases = num(&value("--cases")?)?,
            "--seed" => args.seed = num(&value("--seed")?)?,
            "--chaos-seeds" => args.chaos_seeds = num(&value("--chaos-seeds")?)?,
            "--max-classes" => args.max_classes = num(&value("--max-classes")?)? as usize,
            "--endorse-free" => args.endorse_free = true,
            "--shrink" => args.shrink = true,
            "--corpus" => args.corpus = Some(value("--corpus")?),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: fuzzgen [--cases N] [--seed S] [--chaos-seeds K] [--endorse-free]\n\
                     \x20              [--max-classes N] [--shrink] [--corpus DIR] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzzgen: {e}");
            return ExitCode::from(2);
        }
    };
    let opts = OracleOpts {
        gen: GenConfig {
            max_classes: args.max_classes,
            allow_endorse: !args.endorse_free,
            ..GenConfig::default()
        },
        // Adversarial seeds are derived from the campaign seed so reruns
        // are exactly reproducible.
        chaos_seeds: (0..args.chaos_seeds).map(|i| args.seed.wrapping_add(i * 7919) | 1).collect(),
    };

    let mut total_mutants = 0usize;
    let mut total_killed = 0usize;
    let mut endorse_free = 0u64;
    let mut violations: Vec<Violation> = Vec::new();
    for i in 0..args.cases {
        let case_seed = args.seed.wrapping_add(i);
        let report = run_case(case_seed, &opts);
        total_mutants += report.mutants;
        total_killed += report.killed;
        endorse_free += u64::from(report.endorse_free);
        for v in &report.violations {
            eprintln!("fuzzgen: seed {case_seed}: {} oracle violated: {}", v.oracle, v.detail);
        }
        violations.extend(report.violations);
        if !args.quiet && (i + 1) % 100 == 0 {
            eprintln!("fuzzgen: {}/{} cases...", i + 1, args.cases);
        }
    }

    for (i, v) in violations.iter().enumerate() {
        let source = if args.shrink {
            let fails = violation_fails(v.oracle, &opts);
            shrink_source(&v.source, fails.as_ref(), SHRINK_BUDGET)
        } else {
            v.source.clone()
        };
        if !args.quiet {
            eprintln!("--- counterexample {} ({}) ---\n{}", i + 1, v.oracle, source);
        }
        if let Some(dir) = &args.corpus {
            let path = format!("{dir}/{}-{i}.fej", v.oracle);
            let header = format!(
                "// fuzzgen counterexample: {} oracle\n// {}\n",
                v.oracle,
                v.detail.lines().next().unwrap_or("")
            );
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, header + &source + "\n"))
            {
                eprintln!("fuzzgen: cannot write {path}: {e}");
            } else if !args.quiet {
                eprintln!("fuzzgen: saved {path}");
            }
        }
    }

    let rate =
        if total_mutants == 0 { 100.0 } else { 100.0 * total_killed as f64 / total_mutants as f64 };
    println!(
        "fuzzgen: {} cases (seed {}), {} endorse-free, {} mutants, {} killed ({rate:.1}%), {} violation(s)",
        args.cases, args.seed, endorse_free, total_mutants, total_killed, violations.len()
    );
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
