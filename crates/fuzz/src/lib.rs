//! # enerj-fuzz: generative conformance fuzzing for the FEnerJ pipeline
//!
//! The FEnerJ half of the reproduction (`enerj-lang`) carries the paper's
//! central soundness claim — the section 3.3 noninterference theorem — and
//! this crate stops us from trusting it on a dozen curated programs. It
//! provides:
//!
//! * [`gen`] — a **type-directed generator** that emits well-typed FEnerJ
//!   programs by construction: classes with inheritance, fields across all
//!   four source qualifiers, receiver-precision method overloading, bounded
//!   loops, arrays, and (optionally) `endorse`.
//! * [`mutate`] — a **qualifier-aware mutator** deriving ill-typed
//!   near-miss programs from well-typed ones, each carrying the exact set
//!   of `(TypeErrorKind, Span)` diagnostics the checker is allowed to
//!   report for it.
//! * [`oracle`] — the five **differential oracles**: well-typed ⇒
//!   accepted; single-mutation ill-typed ⇒ rejected *at the mutated site*;
//!   pretty→parse→pretty is a fixpoint and typechecks identically;
//!   endorse-free programs satisfy noninterference across adversarial
//!   chaos seeds; the interpreter is deterministic and a zero-fault
//!   hardware configuration agrees bit-for-bit with reliable semantics.
//! * [`shrink`] — a **delta-debugging shrinker** that minimizes any
//!   violating program before it is reported or pinned into `corpus/`.
//!
//! The `fuzzgen` binary drives seeded campaigns; see the repository README.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod mutate;
pub mod oracle;
pub mod shrink;
