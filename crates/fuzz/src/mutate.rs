//! Qualifier-aware mutation: deriving ill-typed near-misses from well-typed
//! programs, together with the exact diagnostics the checker must report.
//!
//! Each [`Mutant`] is a single-edit variant of a well-typed program that is
//! ill-typed *by construction*, annotated with the set of
//! ([`TypeErrorKind`], [`Span`]) pairs the checker is allowed to report.
//! The mutation oracle then asserts both soundness (the checker rejects)
//! and precision (the reported kind is in the allowed set and the reported
//! span intersects a span influenced by the edit).
//!
//! The catalog follows the issue's three headline near-misses plus two
//! companions:
//!
//! | label prefix        | edit                                            |
//! |---------------------|-------------------------------------------------|
//! | `flip-to-precise`   | one `approx` field declaration becomes `precise`|
//! | `drop-endorse`      | one `endorse(e)` at a demanding site is spliced |
//! | `flip-to-approx`    | one `precise` field declaration becomes `approx`|
//! | `swap-context-inst` | one `let x = new q C in …` flips `q`            |
//! | `context-in-main`   | one `new q C()` in `main` becomes `new context` |
//!
//! For loosening edits (`flip-to-approx`, and `swap-context-inst` in the
//! precise→approx direction) the influenced region is computed by a
//! qualifier taint analysis: a node is tainted when the edit *definitely*
//! changes its static qualifier to `approx`. Every checker error caused by
//! such an edit is reported at a span containing a tainted node, and every
//! tainted node sitting in a demanding position (condition, index, length,
//! or a `precise`/`context` sink) guarantees rejection — which is what
//! makes these mutants valid kill-rate material rather than wishful
//! near-misses.

use enerj_lang::ast::{Expr, ExprKind, MethodQual, NodeId, Program};
use enerj_lang::error::{Span, TypeErrorKind};
use enerj_lang::typecheck::TypedProgram;
use enerj_lang::types::{BaseType, Qual, Type};

/// A single-edit ill-typed variant of a well-typed program.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Human-readable description of the edit (for reports and shrinking).
    pub label: String,
    /// The mutated program.
    pub program: Program,
    /// Error kinds the checker may legitimately report.
    pub kinds: Vec<TypeErrorKind>,
    /// The reported error span must intersect one of these.
    pub spans: Vec<Span>,
}

impl Mutant {
    /// Whether a reported diagnostic is one this mutant allows.
    pub fn explains(&self, kind: TypeErrorKind, span: Span) -> bool {
        self.kinds.contains(&kind) && self.spans.iter().any(|s| intersects(*s, span))
    }
}

fn intersects(a: Span, b: Span) -> bool {
    // Half-open byte ranges; degenerate spans count as points.
    a.start < b.end.max(b.start + 1) && b.start < a.end.max(a.start + 1)
}

/// Derives every valid single-edit mutant of `tp`, each guaranteed to be
/// rejected by a sound checker.
pub fn mutants(tp: &TypedProgram) -> Vec<Mutant> {
    let mut out = Vec::new();
    flip_field_mutants(tp, &mut out);
    drop_endorse_mutants(tp, &mut out);
    swap_context_instantiation_mutants(tp, &mut out);
    context_in_main_mutants(tp, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Shared traversal helpers.
// ---------------------------------------------------------------------------

/// Applies `f` to every expression in every method body and `main`.
pub(crate) fn for_each_expr(p: &Program, f: &mut impl FnMut(&Expr)) {
    fn walk(e: &Expr, f: &mut impl FnMut(&Expr)) {
        f(e);
        match &e.kind {
            ExprKind::Null
            | ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::Var(_)
            | ExprKind::This
            | ExprKind::New(_) => {}
            ExprKind::NewArray(_, a)
            | ExprKind::Length(a)
            | ExprKind::FieldGet(a, _)
            | ExprKind::Cast(_, a)
            | ExprKind::VarSet(_, a)
            | ExprKind::Endorse(a) => walk(a, f),
            ExprKind::Index(a, b)
            | ExprKind::FieldSet(a, _, b)
            | ExprKind::Binary(_, a, b)
            | ExprKind::Let(_, a, b)
            | ExprKind::While(a, b)
            | ExprKind::Seq(a, b) => {
                walk(a, f);
                walk(b, f);
            }
            ExprKind::IndexSet(a, b, c) | ExprKind::If(a, b, c) => {
                walk(a, f);
                walk(b, f);
                walk(c, f);
            }
            ExprKind::Call(r, _, args) => {
                walk(r, f);
                for a in args {
                    walk(a, f);
                }
            }
        }
    }
    for c in &p.classes {
        for m in &c.methods {
            walk(&m.body, f);
        }
    }
    walk(&p.main, f);
}

/// Rebuilds the program, replacing the node with id `target` by
/// `replacement(old_node)` wherever it occurs.
pub(crate) fn replace_node(
    p: &Program,
    target: NodeId,
    replacement: &impl Fn(&Expr) -> Expr,
) -> Program {
    fn rewrite(e: &Expr, target: NodeId, replacement: &impl Fn(&Expr) -> Expr) -> Expr {
        if e.id == target {
            return replacement(e);
        }
        let kind = match &e.kind {
            k @ (ExprKind::Null
            | ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::Var(_)
            | ExprKind::This
            | ExprKind::New(_)) => k.clone(),
            ExprKind::NewArray(t, a) => {
                ExprKind::NewArray(t.clone(), Box::new(rewrite(a, target, replacement)))
            }
            ExprKind::Length(a) => ExprKind::Length(Box::new(rewrite(a, target, replacement))),
            ExprKind::FieldGet(a, f) => {
                ExprKind::FieldGet(Box::new(rewrite(a, target, replacement)), f.clone())
            }
            ExprKind::Cast(t, a) => {
                ExprKind::Cast(t.clone(), Box::new(rewrite(a, target, replacement)))
            }
            ExprKind::VarSet(x, a) => {
                ExprKind::VarSet(x.clone(), Box::new(rewrite(a, target, replacement)))
            }
            ExprKind::Endorse(a) => ExprKind::Endorse(Box::new(rewrite(a, target, replacement))),
            ExprKind::Index(a, b) => ExprKind::Index(
                Box::new(rewrite(a, target, replacement)),
                Box::new(rewrite(b, target, replacement)),
            ),
            ExprKind::FieldSet(a, f, b) => ExprKind::FieldSet(
                Box::new(rewrite(a, target, replacement)),
                f.clone(),
                Box::new(rewrite(b, target, replacement)),
            ),
            ExprKind::Binary(op, a, b) => ExprKind::Binary(
                *op,
                Box::new(rewrite(a, target, replacement)),
                Box::new(rewrite(b, target, replacement)),
            ),
            ExprKind::Let(x, a, b) => ExprKind::Let(
                x.clone(),
                Box::new(rewrite(a, target, replacement)),
                Box::new(rewrite(b, target, replacement)),
            ),
            ExprKind::While(a, b) => ExprKind::While(
                Box::new(rewrite(a, target, replacement)),
                Box::new(rewrite(b, target, replacement)),
            ),
            ExprKind::Seq(a, b) => ExprKind::Seq(
                Box::new(rewrite(a, target, replacement)),
                Box::new(rewrite(b, target, replacement)),
            ),
            ExprKind::IndexSet(a, b, c) => ExprKind::IndexSet(
                Box::new(rewrite(a, target, replacement)),
                Box::new(rewrite(b, target, replacement)),
                Box::new(rewrite(c, target, replacement)),
            ),
            ExprKind::If(a, b, c) => ExprKind::If(
                Box::new(rewrite(a, target, replacement)),
                Box::new(rewrite(b, target, replacement)),
                Box::new(rewrite(c, target, replacement)),
            ),
            ExprKind::Call(r, m, args) => ExprKind::Call(
                Box::new(rewrite(r, target, replacement)),
                m.clone(),
                args.iter().map(|a| rewrite(a, target, replacement)).collect(),
            ),
        };
        Expr { id: e.id, span: e.span, kind }
    }
    let mut p = p.clone();
    for c in &mut p.classes {
        for m in &mut c.methods {
            m.body = rewrite(&m.body, target, replacement);
        }
    }
    p.main = rewrite(&p.main, target, replacement);
    p
}

/// The checker's primitive-qualifier subtyping.
fn prim_qual_sub(q1: Qual, q2: Qual) -> bool {
    q1.is_sub(q2) || q1 == Qual::Precise || (q1 == Qual::Context && q2 == Qual::Approx)
}

/// Whether a primitive sink of this qualifier rejects `approx` values.
fn demanding(q: Qual) -> bool {
    matches!(q, Qual::Precise | Qual::Context)
}

/// The class name of a receiver's static type (well-typed ⇒ a class).
fn recv_class(tp: &TypedProgram, recv: &Expr) -> Option<String> {
    match &tp.types.get(&recv.id)?.base {
        BaseType::Class(c) => Some(c.clone()),
        _ => None,
    }
}

/// Adapted parameter types at a call site, straight from the checker's
/// side tables.
fn call_param_types(tp: &TypedProgram, call: &Expr) -> Option<Vec<Type>> {
    let ExprKind::Call(recv, name, _) = &call.kind else { return None };
    let rq = *tp.call_recv_qual.get(&call.id)?;
    let class = recv_class(tp, recv)?;
    Some(tp.table.msig(rq, &class, name)?.params)
}

// ---------------------------------------------------------------------------
// M1 / M3: flip one field declaration's qualifier.
// ---------------------------------------------------------------------------

fn flip_field_mutants(tp: &TypedProgram, out: &mut Vec<Mutant>) {
    for (ci, class) in tp.program.classes.iter().enumerate() {
        for (fi, field) in class.fields.iter().enumerate() {
            if !field.ty.base.is_prim() {
                continue;
            }
            match field.ty.qual {
                Qual::Approx => flip_to_precise(tp, ci, fi, out),
                Qual::Precise => flip_to_approx(tp, ci, fi, out),
                _ => {}
            }
        }
    }
}

fn with_field_qual(p: &Program, ci: usize, fi: usize, q: Qual) -> Program {
    let mut p = p.clone();
    p.classes[ci].fields[fi].ty.qual = q;
    p
}

/// M1: `approx` field → `precise`. Writes of values that stay non-precise
/// become illegal approx→precise flows; reads tighten, which is harmless
/// at declared sinks but can retighten inferred `let` variables, creating
/// fresh error sites at their reassignments — [`TightenScan`] tracks both.
fn flip_to_precise(tp: &TypedProgram, ci: usize, fi: usize, out: &mut Vec<Mutant>) {
    let fname = tp.program.classes[ci].fields[fi].name.clone();
    let scan = TightenScan::run(
        tp,
        &|e| {
            matches!(&e.kind,
                ExprKind::FieldGet(_, g) | ExprKind::FieldSet(_, g, _) if g == &fname)
        },
        &|e| match &e.kind {
            ExprKind::FieldSet(_, g, _) if g == &fname => Some(Qual::Precise),
            _ => None,
        },
        &|_, _| None,
    );
    if !scan.guaranteed {
        return;
    }
    out.push(Mutant {
        label: format!("flip-to-precise {}.{}", tp.program.classes[ci].name, fname),
        program: with_field_qual(&tp.program, ci, fi, Qual::Precise),
        kinds: vec![TypeErrorKind::NotASubtype],
        spans: scan.possible,
    });
}

/// M3: `precise` field → `approx`. Reads loosen; the taint analysis finds
/// where the loosened qualifier reaches a demanding position.
fn flip_to_approx(tp: &TypedProgram, ci: usize, fi: usize, out: &mut Vec<Mutant>) {
    let fname = tp.program.classes[ci].fields[fi].name.clone();
    let taint = TaintAnalysis::run(
        tp,
        &|e| matches!(&e.kind, ExprKind::FieldGet(_, g) if g == &fname),
        &|e| match &e.kind {
            // Writes to the flipped field now target an `approx` sink.
            ExprKind::FieldSet(_, g, _) if g == &fname => Some(Qual::Approx),
            _ => None,
        },
        &|_, _| None,
    );
    if taint.guaranteed.is_empty() {
        return;
    }
    out.push(Mutant {
        label: format!("flip-to-approx {}.{}", tp.program.classes[ci].name, fname),
        program: with_field_qual(&tp.program, ci, fi, Qual::Approx),
        kinds: loosening_kinds(),
        spans: taint.tainted_spans,
    });
}

fn loosening_kinds() -> Vec<TypeErrorKind> {
    vec![
        TypeErrorKind::NotASubtype,
        TypeErrorKind::ImpreciseCondition,
        TypeErrorKind::ImpreciseIndex,
        TypeErrorKind::ImpreciseArrayLength,
    ]
}

// ---------------------------------------------------------------------------
// M2: drop one endorse at a demanding site.
// ---------------------------------------------------------------------------

fn drop_endorse_mutants(tp: &TypedProgram, out: &mut Vec<Mutant>) {
    #[derive(Clone, Copy)]
    enum Demand {
        Free,
        Exact(TypeErrorKind),
        Sink(Qual),
    }

    struct Finder<'a> {
        tp: &'a TypedProgram,
        found: Vec<(NodeId, Span, TypeErrorKind)>,
    }

    impl Finder<'_> {
        fn visit(&mut self, e: &Expr, demand: Demand) {
            if let ExprKind::Endorse(inner) = &e.kind {
                let iq = self.tp.types[&inner.id].qual;
                match demand {
                    Demand::Exact(kind) if iq != Qual::Precise => {
                        self.found.push((e.id, inner.span, kind));
                    }
                    Demand::Sink(sq) if demanding(sq) && !prim_qual_sub(iq, sq) => {
                        self.found.push((e.id, inner.span, TypeErrorKind::NotASubtype));
                    }
                    _ => {}
                }
                self.visit(inner, Demand::Free);
                return;
            }
            match &e.kind {
                ExprKind::Null
                | ExprKind::IntLit(_)
                | ExprKind::FloatLit(_)
                | ExprKind::Var(_)
                | ExprKind::This
                | ExprKind::New(_) => {}
                ExprKind::NewArray(_, len) => {
                    self.visit(len, Demand::Exact(TypeErrorKind::ImpreciseArrayLength));
                }
                ExprKind::Index(a, i) => {
                    self.visit(a, Demand::Free);
                    self.visit(i, Demand::Exact(TypeErrorKind::ImpreciseIndex));
                }
                ExprKind::IndexSet(a, i, v) => {
                    self.visit(a, Demand::Free);
                    self.visit(i, Demand::Exact(TypeErrorKind::ImpreciseIndex));
                    self.visit(v, Demand::Sink(self.tp.types[&e.id].qual));
                }
                ExprKind::If(c, t, f) => {
                    self.visit(c, Demand::Exact(TypeErrorKind::ImpreciseCondition));
                    self.visit(t, Demand::Free);
                    self.visit(f, Demand::Free);
                }
                ExprKind::While(c, b) => {
                    self.visit(c, Demand::Exact(TypeErrorKind::ImpreciseCondition));
                    self.visit(b, Demand::Free);
                }
                ExprKind::FieldSet(r, _, v) => {
                    self.visit(r, Demand::Free);
                    self.visit(v, Demand::Sink(self.tp.types[&e.id].qual));
                }
                ExprKind::VarSet(_, v) => {
                    self.visit(v, Demand::Sink(self.tp.types[&e.id].qual));
                }
                ExprKind::Call(r, _, args) => {
                    self.visit(r, Demand::Free);
                    let ptys = call_param_types(self.tp, e);
                    for (i, a) in args.iter().enumerate() {
                        let d = ptys
                            .as_ref()
                            .and_then(|p| p.get(i))
                            .filter(|t| t.is_prim())
                            .map_or(Demand::Free, |t| Demand::Sink(t.qual));
                        self.visit(a, d);
                    }
                }
                // `let` bodies and `seq` tails are type-transparent: the
                // node's type *is* the sub-expression's type, so the parent
                // demand applies unchanged (the checker reports at the
                // outer value span, which contains the endorse site, and
                // the oracle checks span *intersection*).
                ExprKind::Let(_, v, b) => {
                    self.visit(v, Demand::Free);
                    self.visit(b, demand);
                }
                ExprKind::Seq(a, b) => {
                    self.visit(a, Demand::Free);
                    self.visit(b, demand);
                }
                ExprKind::Length(a) | ExprKind::FieldGet(a, _) | ExprKind::Cast(_, a) => {
                    self.visit(a, Demand::Free);
                }
                ExprKind::Binary(_, a, b) => {
                    self.visit(a, Demand::Free);
                    self.visit(b, Demand::Free);
                }
                ExprKind::Endorse(_) => unreachable!("handled above"),
            }
        }
    }

    let mut finder = Finder { tp, found: Vec::new() };
    for class in &tp.program.classes {
        for method in &class.methods {
            let d = if method.ret.is_prim() { Demand::Sink(method.ret.qual) } else { Demand::Free };
            finder.visit(&method.body, d);
        }
    }
    finder.visit(&tp.program.main, Demand::Free);

    for (id, span, kind) in finder.found {
        let program = replace_node(&tp.program, id, &|old| {
            let ExprKind::Endorse(inner) = &old.kind else {
                unreachable!("target is an endorse node");
            };
            (**inner).clone()
        });
        out.push(Mutant {
            label: format!("drop-endorse @{}..{}", span.start, span.end),
            program,
            kinds: vec![kind],
            spans: vec![span],
        });
    }
}

// ---------------------------------------------------------------------------
// M4: swap the qualifier of a `let x = new q C in …` instantiation.
// ---------------------------------------------------------------------------

fn swap_context_instantiation_mutants(tp: &TypedProgram, out: &mut Vec<Mutant>) {
    // Candidates: let-bound `new q C` locals used *only* as member-access
    // receivers (no shadowing, no reassignment, no bare-var flows), so the
    // full effect of the flip is captured by how `context` members adapt.
    struct Cand {
        let_id: NodeId,
        var: String,
        qual: Qual,
        class: String,
    }
    let mut cands: Vec<Cand> = Vec::new();
    for_each_expr(&tp.program, &mut |e| {
        if let ExprKind::Let(x, v, _) = &e.kind {
            if let ExprKind::New(t) = &v.kind {
                if let (BaseType::Class(c), Qual::Precise | Qual::Approx) = (&t.base, t.qual) {
                    cands.push(Cand {
                        let_id: e.id,
                        var: x.clone(),
                        qual: t.qual,
                        class: c.clone(),
                    });
                }
            }
        }
    });

    for cand in cands {
        let mut shadowed = false;
        let mut reassigned = false;
        let mut total_uses = 0usize;
        let mut receiver_uses = 0usize;
        for_each_expr(&tp.program, &mut |e| match &e.kind {
            ExprKind::Let(x, _, _) if *x == cand.var && e.id != cand.let_id => shadowed = true,
            ExprKind::VarSet(x, _) if *x == cand.var => reassigned = true,
            ExprKind::Var(x) if *x == cand.var => total_uses += 1,
            ExprKind::FieldGet(r, _) | ExprKind::FieldSet(r, _, _) | ExprKind::Call(r, _, _) => {
                if matches!(&r.kind, ExprKind::Var(x) if *x == cand.var) {
                    receiver_uses += 1;
                }
            }
            _ => {}
        });
        if shadowed || reassigned || total_uses != receiver_uses {
            continue;
        }
        // Reads of array-typed or context-qualified class members through
        // `x` cascade the flip into element types and nested receivers;
        // keep the expected-site computation simple by skipping those.
        let mut cascading_read = false;
        for_each_expr(&tp.program, &mut |e| {
            if let ExprKind::FieldGet(r, g) = &e.kind {
                if matches!(&r.kind, ExprKind::Var(x) if *x == cand.var) {
                    if let Some(t) = tp.table.field_decl(&cand.class, g) {
                        let ctx_class =
                            t.qual == Qual::Context && matches!(t.base, BaseType::Class(_));
                        if matches!(t.base, BaseType::Array(_)) || ctx_class {
                            cascading_read = true;
                        }
                    }
                }
            }
        });
        if cascading_read {
            continue;
        }

        let flipped = if cand.qual == Qual::Precise { Qual::Approx } else { Qual::Precise };
        if let Some(m) =
            build_context_swap_mutant(tp, &cand.var, cand.let_id, cand.qual, flipped, &cand.class)
        {
            out.push(m);
        }
    }
}

fn build_context_swap_mutant(
    tp: &TypedProgram,
    var: &str,
    let_id: NodeId,
    old_q: Qual,
    new_q: Qual,
    class: &str,
) -> Option<Mutant> {
    let is_recv_var = |r: &Expr| matches!(&r.kind, ExprKind::Var(x) if x == var);
    let label = format!("swap-context-inst {var}: new {old_q} {class} -> new {new_q} {class}");
    let program = || {
        replace_node(&tp.program, let_id, &|old| {
            let ExprKind::Let(x, v, b) = &old.kind else { unreachable!() };
            let ExprKind::New(t) = &v.kind else { unreachable!() };
            let mut t = t.clone();
            t.qual = new_q;
            Expr {
                id: old.id,
                span: old.span,
                kind: ExprKind::Let(
                    x.clone(),
                    Box::new(Expr { id: v.id, span: v.span, kind: ExprKind::New(t) }),
                    b.clone(),
                ),
            }
        })
    };

    // Context-qualified members seen through `x` flip with the receiver.
    let context_prim_field = |g: &str| {
        tp.table.field_decl(class, g).is_some_and(|t| t.qual == Qual::Context && t.base.is_prim())
    };
    let context_class_field = |g: &str| {
        tp.table
            .field_decl(class, g)
            .is_some_and(|t| t.qual == Qual::Context && matches!(t.base, BaseType::Class(_)))
    };
    // Array fields with context elements are invariant in their (adapted)
    // element type: any array written through `x` mismatches after the
    // flip, in both directions.
    let context_elem_array_field = |g: &str| {
        tp.table
            .field_decl(class, g)
            .is_some_and(|t| matches!(&t.base, BaseType::Array(elem) if elem.qual == Qual::Context))
    };

    // Class-typed and array-typed sinks through `x` break by subtyping /
    // invariance in both directions; a value that itself goes through `x`
    // may flip along with the sink, so only independent values guarantee.
    let mut member_spans = Vec::new();
    let mut member_guaranteed = false;
    for_each_expr(&tp.program, &mut |e| {
        if let ExprKind::FieldSet(r, g, v) = &e.kind {
            if is_recv_var(r)
                && ((context_class_field(g) && tp.types[&v.id].base != BaseType::Null)
                    || context_elem_array_field(g))
            {
                member_spans.push(v.span);
                if !contains_access_through(v, var) {
                    member_guaranteed = true;
                }
            }
        }
    });

    if new_q == Qual::Precise {
        // Tightening: context sinks through `x` demand precise now, and
        // retightened reads through `x` retighten inferred `let` vars.
        let scan = TightenScan::run(
            tp,
            &|e| match &e.kind {
                ExprKind::FieldGet(r, g) | ExprKind::FieldSet(r, g, _) if is_recv_var(r) => {
                    context_prim_field(g)
                }
                ExprKind::Call(r, name, _) if is_recv_var(r) => declared_ret(tp, class, name)
                    .is_some_and(|t| t.qual == Qual::Context && t.base.is_prim()),
                _ => false,
            },
            &|e| match &e.kind {
                ExprKind::FieldSet(r, g, _) if is_recv_var(r) && context_prim_field(g) => {
                    Some(Qual::Precise)
                }
                _ => None,
            },
            &|e, i| match &e.kind {
                ExprKind::Call(r, name, _) if is_recv_var(r) => {
                    let dq = declared_param_quals(tp, class, name).get(i).copied()?;
                    (dq == Qual::Context).then_some(Qual::Precise)
                }
                _ => None,
            },
        );
        if !scan.guaranteed && !member_guaranteed {
            return None;
        }
        let mut spans = scan.possible;
        spans.extend(member_spans);
        Some(Mutant { label, program: program(), kinds: vec![TypeErrorKind::NotASubtype], spans })
    } else {
        // Loosening: context members through `x` become approx; the taint
        // analysis finds where that reaches a demanding position.
        let taint = TaintAnalysis::run(
            tp,
            &|e| match &e.kind {
                ExprKind::FieldGet(r, g) if is_recv_var(r) => context_prim_field(g),
                ExprKind::Call(r, name, _) if is_recv_var(r) => declared_ret(tp, class, name)
                    .is_some_and(|t| t.qual == Qual::Context && t.base.is_prim()),
                _ => false,
            },
            &|e| match &e.kind {
                // Context sinks through `x` loosen along with the reads.
                ExprKind::FieldSet(r, g, _) if is_recv_var(r) && context_prim_field(g) => {
                    Some(Qual::Approx)
                }
                _ => None,
            },
            &|e, i| match &e.kind {
                ExprKind::Call(r, name, _) if is_recv_var(r) => {
                    let dq = declared_param_quals(tp, class, name).get(i).copied()?;
                    (dq == Qual::Context).then_some(Qual::Approx)
                }
                _ => None,
            },
        );
        if taint.guaranteed.is_empty() && !member_guaranteed {
            return None;
        }
        let mut spans = taint.tainted_spans;
        spans.extend(member_spans);
        Some(Mutant { label, program: program(), kinds: loosening_kinds(), spans })
    }
}

/// Declared (pre-adaptation) parameter qualifiers of `name` on `class`.
fn declared_param_quals(tp: &TypedProgram, class: &str, name: &str) -> Vec<Qual> {
    tp.table
        .method_decl(class, name, MethodQual::Precise)
        .map(|(_, m)| m.params.iter().map(|(_, t)| t.qual).collect())
        .unwrap_or_default()
}

/// Declared (pre-adaptation) return type of `name` on `class`.
fn declared_ret(tp: &TypedProgram, class: &str, name: &str) -> Option<Type> {
    tp.table.method_decl(class, name, MethodQual::Precise).map(|(_, m)| m.ret.clone())
}

// ---------------------------------------------------------------------------
// M5: `new context C()` in main.
// ---------------------------------------------------------------------------

fn context_in_main_mutants(tp: &TypedProgram, out: &mut Vec<Mutant>) {
    let mut news: Vec<(NodeId, Span)> = Vec::new();
    // Only `main` — inside class bodies `new context` is legal.
    let mut in_main = Vec::new();
    collect_news(&tp.program.main, &mut in_main);
    news.extend(in_main);
    for (id, span) in news {
        let program = replace_node(&tp.program, id, &|old| {
            let ExprKind::New(t) = &old.kind else { unreachable!() };
            let mut t = t.clone();
            t.qual = Qual::Context;
            Expr { id: old.id, span: old.span, kind: ExprKind::New(t) }
        });
        out.push(Mutant {
            label: format!("context-in-main @{}..{}", span.start, span.end),
            program,
            kinds: vec![TypeErrorKind::ContextOutsideClass],
            spans: vec![span],
        });
    }
}

fn collect_news(e: &Expr, out: &mut Vec<(NodeId, Span)>) {
    if matches!(&e.kind, ExprKind::New(_)) {
        out.push((e.id, e.span));
    }
    match &e.kind {
        ExprKind::Null
        | ExprKind::IntLit(_)
        | ExprKind::FloatLit(_)
        | ExprKind::Var(_)
        | ExprKind::This
        | ExprKind::New(_) => {}
        ExprKind::NewArray(_, a)
        | ExprKind::Length(a)
        | ExprKind::FieldGet(a, _)
        | ExprKind::Cast(_, a)
        | ExprKind::VarSet(_, a)
        | ExprKind::Endorse(a) => collect_news(a, out),
        ExprKind::Index(a, b)
        | ExprKind::FieldSet(a, _, b)
        | ExprKind::Binary(_, a, b)
        | ExprKind::Let(_, a, b)
        | ExprKind::While(a, b)
        | ExprKind::Seq(a, b) => {
            collect_news(a, out);
            collect_news(b, out);
        }
        ExprKind::IndexSet(a, b, c) | ExprKind::If(a, b, c) => {
            collect_news(a, out);
            collect_news(b, out);
            collect_news(c, out);
        }
        ExprKind::Call(r, _, args) => {
            collect_news(r, out);
            for a in args {
                collect_news(a, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Qualifier taint analysis for loosening edits.
// ---------------------------------------------------------------------------

/// Result of propagating "this node's qualifier definitely becomes
/// `approx`" through a well-typed program.
struct TaintAnalysis {
    /// Spans of every definitely-retyped node. The checker's error for the
    /// corresponding edit is always reported at a span containing one.
    tainted_spans: Vec<Span>,
    /// Demanding positions occupied by a tainted node — each guarantees
    /// the mutant is rejected.
    guaranteed: Vec<Span>,
}

impl TaintAnalysis {
    /// `seed`: nodes whose type the edit changes from `precise`/`context`
    /// to `approx` directly. `fieldset_sink`: overridden (loosened) sink
    /// qualifier for a `FieldSet` node. `call_arg_sink`: overridden sink
    /// qualifier for argument `i` of a call node.
    fn run(
        tp: &TypedProgram,
        seed: &dyn Fn(&Expr) -> bool,
        fieldset_sink: &dyn Fn(&Expr) -> Option<Qual>,
        call_arg_sink: &dyn Fn(&Expr, usize) -> Option<Qual>,
    ) -> TaintAnalysis {
        let mut w = TaintWalker {
            tp,
            seed,
            fieldset_sink,
            call_arg_sink,
            env: Vec::new(),
            tainted_spans: Vec::new(),
            guaranteed: Vec::new(),
        };
        for class in &tp.program.classes {
            for method in &class.methods {
                w.env = method.params.iter().map(|(n, _)| (n.clone(), false)).collect();
                let tb = w.visit(&method.body);
                if tb && method.ret.is_prim() && demanding(method.ret.qual) {
                    w.guaranteed.push(method.body.span);
                }
            }
        }
        w.env.clear();
        w.visit(&tp.program.main);

        TaintAnalysis { tainted_spans: w.tainted_spans, guaranteed: w.guaranteed }
    }
}

struct TaintWalker<'a> {
    tp: &'a TypedProgram,
    seed: &'a dyn Fn(&Expr) -> bool,
    fieldset_sink: &'a dyn Fn(&Expr) -> Option<Qual>,
    call_arg_sink: &'a dyn Fn(&Expr, usize) -> Option<Qual>,
    env: Vec<(String, bool)>,
    tainted_spans: Vec<Span>,
    guaranteed: Vec<Span>,
}

impl TaintWalker<'_> {
    fn lookup(&self, x: &str) -> bool {
        self.env.iter().rev().find(|(n, _)| n == x).is_some_and(|(_, t)| *t)
    }

    fn old_qual(&self, e: &Expr) -> Qual {
        self.tp.types[&e.id].qual
    }

    fn mark(&mut self, e: &Expr) -> bool {
        self.tainted_spans.push(e.span);
        true
    }

    fn arg_sink(&self, call: &Expr, i: usize, ptys: &Option<Vec<Type>>) -> Option<Qual> {
        (self.call_arg_sink)(call, i).or_else(|| {
            ptys.as_ref().and_then(|p| p.get(i)).filter(|t| t.is_prim()).map(|t| t.qual)
        })
    }

    /// Visits `e`; returns whether the edit definitely retypes it from
    /// `precise`/`context` to `approx`.
    fn visit(&mut self, e: &Expr) -> bool {
        if (self.seed)(e) {
            // Seeds still have children to scan (receivers, call args).
            match &e.kind {
                ExprKind::FieldGet(r, _) => {
                    self.visit(r);
                }
                ExprKind::Call(r, _, args) => {
                    self.visit(r);
                    let ptys = call_param_types(self.tp, e);
                    for (i, a) in args.iter().enumerate() {
                        if self.visit(a) && self.arg_sink(e, i, &ptys).is_some_and(demanding) {
                            self.guaranteed.push(a.span);
                        }
                    }
                }
                _ => {}
            }
            return self.mark(e);
        }
        match &e.kind {
            ExprKind::Null
            | ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::This
            | ExprKind::New(_) => false,
            ExprKind::Var(x) => {
                if self.lookup(x) {
                    self.mark(e)
                } else {
                    false
                }
            }
            ExprKind::FieldGet(r, _) | ExprKind::Length(r) => {
                self.visit(r);
                false
            }
            ExprKind::Cast(_, a) | ExprKind::Endorse(a) => {
                // Casts are class-typed (no primitive taint); endorsement
                // re-precises, so taint stops in both cases.
                self.visit(a);
                false
            }
            ExprKind::NewArray(_, len) => {
                if self.visit(len) {
                    self.guaranteed.push(len.span);
                }
                false
            }
            ExprKind::Index(a, i) => {
                self.visit(a);
                if self.visit(i) {
                    self.guaranteed.push(i.span);
                }
                false
            }
            ExprKind::IndexSet(a, i, v) => {
                self.visit(a);
                if self.visit(i) {
                    self.guaranteed.push(i.span);
                }
                let tv = self.visit(v);
                // Element sinks are declared types: unchanged by the edit.
                if tv && demanding(self.old_qual(e)) {
                    self.guaranteed.push(v.span);
                }
                false
            }
            ExprKind::Binary(_, a, b) => {
                let ta = self.visit(a);
                let tb = self.visit(b);
                if (ta || tb) && demanding(self.old_qual(e)) {
                    self.mark(e)
                } else {
                    false
                }
            }
            ExprKind::If(c, t, f) => {
                if self.visit(c) {
                    self.guaranteed.push(c.span);
                }
                let tt = self.visit(t);
                let tf = self.visit(f);
                if (tt || tf) && demanding(self.old_qual(e)) {
                    self.mark(e)
                } else {
                    false
                }
            }
            ExprKind::While(c, b) => {
                if self.visit(c) {
                    self.guaranteed.push(c.span);
                }
                self.visit(b);
                false
            }
            ExprKind::Let(x, v, b) => {
                let tv = self.visit(v);
                self.env.push((x.clone(), tv));
                let tb = self.visit(b);
                self.env.pop();
                if tb {
                    self.mark(e)
                } else {
                    false
                }
            }
            ExprKind::VarSet(x, v) => {
                let tv = self.visit(v);
                let sink = if self.lookup(x) { Qual::Approx } else { self.old_qual(e) };
                if tv && demanding(sink) {
                    self.guaranteed.push(v.span);
                }
                if self.lookup(x) && demanding(self.old_qual(e)) {
                    self.mark(e)
                } else {
                    false
                }
            }
            ExprKind::Seq(a, b) => {
                self.visit(a);
                if self.visit(b) {
                    self.mark(e)
                } else {
                    false
                }
            }
            ExprKind::FieldSet(r, _, v) => {
                self.visit(r);
                let tv = self.visit(v);
                let over = (self.fieldset_sink)(e);
                if tv && demanding(over.unwrap_or_else(|| self.old_qual(e))) {
                    self.guaranteed.push(v.span);
                }
                // A loosened field-set node is itself retyped: its type is
                // the (adapted) field type, which the edit flips to approx.
                if over == Some(Qual::Approx) && demanding(self.old_qual(e)) {
                    self.mark(e)
                } else {
                    false
                }
            }
            ExprKind::Call(r, _, args) => {
                self.visit(r);
                let ptys = call_param_types(self.tp, e);
                for (i, a) in args.iter().enumerate() {
                    if self.visit(a) && self.arg_sink(e, i, &ptys).is_some_and(demanding) {
                        self.guaranteed.push(a.span);
                    }
                }
                false
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Qualifier tightening analysis for flip-to-precise edits.
// ---------------------------------------------------------------------------

/// Dual of [`TaintAnalysis`] for edits that make reads *more* precise.
///
/// Tightened values are harmless at declared sinks, but two things still
/// break: (a) sinks the edit itself tightens (the flipped field, or
/// `context` members seen through a retightened receiver) now reject
/// values that stay non-precise, and (b) `let` variables infer their type
/// from the initializer, so a tightened initializer retightens the
/// variable and every `x := e` of a still-approx value becomes an error.
///
/// `possible` over-approximates the reportable error spans; `guaranteed`
/// is true when at least one site *definitely* errors (its sink
/// definitely tightens to `precise` while its value definitely cannot
/// tighten).
struct TightenScan {
    possible: Vec<Span>,
    guaranteed: bool,
}

impl TightenScan {
    /// `seed`: nodes the edit may retype toward `precise`.
    /// `fieldset_sink`: overridden (tightened) sink for a `FieldSet` node.
    /// `call_arg_sink`: overridden sink for argument `i` of a call node.
    fn run(
        tp: &TypedProgram,
        seed: &dyn Fn(&Expr) -> bool,
        fieldset_sink: &dyn Fn(&Expr) -> Option<Qual>,
        call_arg_sink: &dyn Fn(&Expr, usize) -> Option<Qual>,
    ) -> TightenScan {
        let mut w = TightenWalker {
            tp,
            seed,
            fieldset_sink,
            call_arg_sink,
            env: Vec::new(),
            possible: Vec::new(),
            guaranteed: false,
        };
        for class in &tp.program.classes {
            for method in &class.methods {
                w.env = method.params.iter().map(|(n, _)| (n.clone(), false)).collect();
                w.visit(&method.body);
            }
        }
        w.env.clear();
        w.visit(&tp.program.main);
        TightenScan { possible: w.possible, guaranteed: w.guaranteed }
    }
}

struct TightenWalker<'a> {
    tp: &'a TypedProgram,
    seed: &'a dyn Fn(&Expr) -> bool,
    fieldset_sink: &'a dyn Fn(&Expr) -> Option<Qual>,
    call_arg_sink: &'a dyn Fn(&Expr, usize) -> Option<Qual>,
    env: Vec<(String, bool)>,
    possible: Vec<Span>,
    guaranteed: bool,
}

impl TightenWalker<'_> {
    fn lookup(&self, x: &str) -> bool {
        self.env.iter().rev().find(|(n, _)| n == x).is_some_and(|(_, t)| *t)
    }

    /// Visits `e`; returns whether the edit *may* retype it toward
    /// `precise` (over-approximate, so guarantees derived from a `false`
    /// answer are sound).
    fn visit(&mut self, e: &Expr) -> bool {
        let seeded = (self.seed)(e);
        match &e.kind {
            ExprKind::Null
            | ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::This
            | ExprKind::New(_) => seeded,
            ExprKind::Var(x) => seeded || self.lookup(x),
            ExprKind::FieldGet(r, _) => {
                self.visit(r);
                seeded
            }
            ExprKind::FieldSet(r, _, v) => {
                self.visit(r);
                let tv = self.visit(v);
                if let Some(sq) = (self.fieldset_sink)(e) {
                    if demanding(sq) && !prim_qual_sub(self.tp.types[&v.id].qual, sq) {
                        self.possible.push(v.span);
                        if !tv {
                            self.guaranteed = true;
                        }
                    }
                }
                seeded
            }
            ExprKind::VarSet(x, v) => {
                // A retightened `let` var makes its reassignments demand
                // precise; the value may tighten too, so possible-only.
                self.visit(v);
                if self.lookup(x) && !prim_qual_sub(self.tp.types[&v.id].qual, Qual::Precise) {
                    self.possible.push(v.span);
                }
                seeded || self.lookup(x)
            }
            ExprKind::Let(x, init, b) => {
                let ti = self.visit(init);
                self.env.push((x.clone(), ti));
                let tb = self.visit(b);
                self.env.pop();
                seeded || tb
            }
            ExprKind::Seq(a, b) => {
                self.visit(a);
                let tb = self.visit(b);
                seeded || tb
            }
            ExprKind::Binary(_, a, b) => {
                let ta = self.visit(a);
                let tb = self.visit(b);
                seeded || ta || tb
            }
            ExprKind::If(c, t, f) => {
                self.visit(c);
                let tt = self.visit(t);
                let tf = self.visit(f);
                seeded || tt || tf
            }
            ExprKind::While(a, b) | ExprKind::Index(a, b) => {
                self.visit(a);
                self.visit(b);
                seeded
            }
            ExprKind::IndexSet(a, i, v) => {
                self.visit(a);
                self.visit(i);
                self.visit(v);
                seeded
            }
            ExprKind::NewArray(_, len) | ExprKind::Length(len) => {
                self.visit(len);
                seeded
            }
            ExprKind::Cast(_, a) | ExprKind::Endorse(a) => {
                self.visit(a);
                // Cast types are annotations; endorse is already precise.
                seeded
            }
            ExprKind::Call(r, _, args) => {
                self.visit(r);
                for (i, a) in args.iter().enumerate() {
                    let ta = self.visit(a);
                    if let Some(sq) = (self.call_arg_sink)(e, i) {
                        if demanding(sq) && !prim_qual_sub(self.tp.types[&a.id].qual, sq) {
                            self.possible.push(a.span);
                            if !ta {
                                self.guaranteed = true;
                            }
                        }
                    }
                }
                // Return types are declared, so calls never tighten unless
                // the edit targets them directly (i.e. they are seeds).
                seeded
            }
        }
    }
}

/// Whether any member access (`FieldGet`/`FieldSet`/`Call`) inside `e`
/// has `var` as its receiver.
fn contains_access_through(e: &Expr, var: &str) -> bool {
    let mut found = false;
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match &e.kind {
            ExprKind::FieldGet(r, _) | ExprKind::FieldSet(r, _, _) | ExprKind::Call(r, _, _) => {
                if matches!(&r.kind, ExprKind::Var(x) if x == var) {
                    found = true;
                    break;
                }
            }
            _ => {}
        }
        match &e.kind {
            ExprKind::Null
            | ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::Var(_)
            | ExprKind::This
            | ExprKind::New(_) => {}
            ExprKind::NewArray(_, a)
            | ExprKind::Length(a)
            | ExprKind::FieldGet(a, _)
            | ExprKind::Cast(_, a)
            | ExprKind::VarSet(_, a)
            | ExprKind::Endorse(a) => stack.push(a),
            ExprKind::Index(a, b)
            | ExprKind::FieldSet(a, _, b)
            | ExprKind::Binary(_, a, b)
            | ExprKind::Let(_, a, b)
            | ExprKind::While(a, b)
            | ExprKind::Seq(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            ExprKind::IndexSet(a, b, c) | ExprKind::If(a, b, c) => {
                stack.push(a);
                stack.push(b);
                stack.push(c);
            }
            ExprKind::Call(r, _, args) => {
                stack.push(r);
                stack.extend(args.iter());
            }
        }
    }
    found
}
