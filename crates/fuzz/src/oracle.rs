//! The five differential conformance oracles.
//!
//! Each fuzz case starts from one generated program (see [`crate::gen`])
//! and checks:
//!
//! 1. **Well-typed acceptance** — the type-directed generator only emits
//!    well-typed programs, so `compile` must accept.
//! 2. **Mutation soundness and precision** — every single-edit ill-typed
//!    near-miss derived by [`crate::mutate`] must be rejected, and the
//!    diagnostic must carry an allowed kind at an allowed location.
//! 3. **Pretty-printer round-trip** — pretty → parse → pretty is a
//!    fixpoint, and the reparsed program typechecks identically.
//! 4. **Noninterference** — endorse-free accepted programs satisfy the
//!    section 3.3 theorem under every adversarial chaos seed supplied.
//! 5. **Execution determinism** — reliable and same-seed chaos runs are
//!    reproducible bit-for-bit, and a hardware configuration with every
//!    fault strategy disabled agrees exactly with reliable semantics.
//!
//! [`run_case`] executes all five for one seed and returns a
//! [`CaseReport`]; [`violation_fails`] rebuilds a failure predicate from a
//! violation so the shrinker can minimize the offending program.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use enerj_hw::{Hardware, HwConfig, Level, StrategyMask};
use enerj_lang::interp::{run, ExecMode, HeapEntry, RunOutcome, Value};
use enerj_lang::noninterference::check_non_interference;
use enerj_lang::parser::parse;
use enerj_lang::pretty::program_to_string;
use enerj_lang::typecheck::{check, TypedProgram};

use crate::gen::{generate_source, GenConfig};
use crate::mutate::mutants;

/// Which oracle a violation came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleKind {
    /// Oracle 1: a generated program was rejected by the checker.
    WellTyped,
    /// Oracle 2a: an ill-typed mutant was accepted by the checker.
    MutationSoundness,
    /// Oracle 2b: a mutant was rejected, but with the wrong kind or span.
    MutationPrecision,
    /// Oracle 3: pretty→parse→pretty diverged, or the reparse failed.
    Roundtrip,
    /// Oracle 4: an endorse-free program violated noninterference.
    NonInterference,
    /// Oracle 5: a nondeterministic or zero-fault-divergent execution.
    Determinism,
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OracleKind::WellTyped => "well-typed",
            OracleKind::MutationSoundness => "mutation-soundness",
            OracleKind::MutationPrecision => "mutation-precision",
            OracleKind::Roundtrip => "roundtrip",
            OracleKind::NonInterference => "noninterference",
            OracleKind::Determinism => "determinism",
        })
    }
}

/// One oracle violation, carrying the program that exhibits it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated oracle.
    pub oracle: OracleKind,
    /// Human-readable description of the disagreement.
    pub detail: String,
    /// Source of the offending program (always the *original* generated
    /// program, so mutation failures can be re-derived and shrunk).
    pub source: String,
}

/// Options shared by every case of a campaign.
#[derive(Debug, Clone)]
pub struct OracleOpts {
    /// Generator configuration.
    pub gen: GenConfig,
    /// Adversarial seeds for the noninterference oracle.
    pub chaos_seeds: Vec<u64>,
}

impl Default for OracleOpts {
    fn default() -> Self {
        OracleOpts { gen: GenConfig::default(), chaos_seeds: vec![1, 2, 3] }
    }
}

/// The outcome of one fuzz case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case seed.
    pub seed: u64,
    /// Number of ill-typed mutants derived.
    pub mutants: usize,
    /// Number of mutants the checker rejected.
    pub killed: usize,
    /// Whether the generated program was endorse-free (and therefore
    /// subject to the noninterference oracle).
    pub endorse_free: bool,
    /// Every oracle violation observed for this seed.
    pub violations: Vec<Violation>,
}

/// Runs all five oracles for one generated program.
pub fn run_case(seed: u64, opts: &OracleOpts) -> CaseReport {
    let source = generate_source(seed, &opts.gen);
    let mut report =
        CaseReport { seed, mutants: 0, killed: 0, endorse_free: false, violations: Vec::new() };
    let mut violate = |oracle, detail: String| {
        report.violations.push(Violation { oracle, detail, source: source.clone() });
    };

    // Oracle 1: the generator only emits well-typed programs.
    let tp = match enerj_lang::compile(&source) {
        Ok(tp) => tp,
        Err(e) => {
            violate(OracleKind::WellTyped, format!("generated program rejected: {e}"));
            return report;
        }
    };
    report.endorse_free = !tp.program.uses_endorse();

    // Oracle 2: every single-edit near-miss is rejected, at the edit.
    for m in mutants(&tp) {
        report.mutants += 1;
        match check(m.program.clone()) {
            Ok(_) => {
                report.violations.push(Violation {
                    oracle: OracleKind::MutationSoundness,
                    detail: format!("mutant survived: {}", m.label),
                    source: source.clone(),
                });
            }
            Err(e) => {
                report.killed += 1;
                if !m.explains(e.kind, e.span) {
                    report.violations.push(Violation {
                        oracle: OracleKind::MutationPrecision,
                        detail: format!(
                            "{}: reported {:?} at {}..{}, allowed kinds {:?} spans {:?}",
                            m.label, e.kind, e.span.start, e.span.end, m.kinds, m.spans
                        ),
                        source: source.clone(),
                    });
                }
            }
        }
    }

    // Oracle 3: pretty→parse→pretty fixpoint + identical verdict.
    if let Some(detail) = roundtrip_divergence(&source) {
        report.violations.push(Violation {
            oracle: OracleKind::Roundtrip,
            detail,
            source: source.clone(),
        });
    }

    // Oracle 4: noninterference for endorse-free programs.
    if report.endorse_free && !opts.chaos_seeds.is_empty() {
        if let Err(e) = check_non_interference(&tp, opts.chaos_seeds.iter().copied()) {
            report.violations.push(Violation {
                oracle: OracleKind::NonInterference,
                detail: format!("noninterference violated: {e}"),
                source: source.clone(),
            });
        }
    }

    // Oracle 5: determinism and zero-fault ≡ reliable.
    if let Some(detail) = determinism_divergence(&tp, seed) {
        report.violations.push(Violation {
            oracle: OracleKind::Determinism,
            detail,
            source: source.clone(),
        });
    }

    report
}

/// Checks oracle 3 on `source`; returns the divergence if any.
///
/// `source` is assumed compilable; the reparse of its pretty-print must be
/// too (identical verdict), and pretty-printing must reach a fixpoint in
/// one step.
pub fn roundtrip_divergence(source: &str) -> Option<String> {
    let prog = match parse(source) {
        Ok(p) => p,
        Err(e) => return Some(format!("original source does not parse: {e}")),
    };
    let printed = program_to_string(&prog);
    let reparsed = match parse(&printed) {
        Ok(p) => p,
        Err(e) => return Some(format!("pretty-printed source does not parse: {e}")),
    };
    let reprinted = program_to_string(&reparsed);
    if printed != reprinted {
        return Some(format!(
            "pretty-print is not a fixpoint:\n--- first ---\n{printed}\n--- second ---\n{reprinted}"
        ));
    }
    let v1 = enerj_lang::compile(source).is_ok();
    let v2 = enerj_lang::compile(&printed).is_ok();
    if v1 != v2 {
        return Some(format!(
            "typecheck verdict changed across round-trip: original {v1}, reprinted {v2}"
        ));
    }
    None
}

/// Checks oracle 5 on a compiled program; returns the divergence if any.
pub fn determinism_divergence(tp: &TypedProgram, seed: u64) -> Option<String> {
    let chaos_seed = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;

    let r1 = match run(tp, ExecMode::Reliable) {
        Ok(o) => o,
        Err(e) => return Some(format!("reliable run trapped: {e}")),
    };
    let r2 = match run(tp, ExecMode::Reliable) {
        Ok(o) => o,
        Err(e) => return Some(format!("second reliable run trapped: {e}")),
    };
    if let Some(d) = outcome_divergence(&r1, &r2) {
        return Some(format!("reliable execution is nondeterministic: {d}"));
    }

    let c1 = match run(tp, ExecMode::Chaos { seed: chaos_seed }) {
        Ok(o) => o,
        Err(e) => return Some(format!("chaos run trapped: {e}")),
    };
    let c2 = match run(tp, ExecMode::Chaos { seed: chaos_seed }) {
        Ok(o) => o,
        Err(e) => return Some(format!("second chaos run trapped: {e}")),
    };
    if let Some(d) = outcome_divergence(&c1, &c2) {
        return Some(format!("same-seed chaos execution is nondeterministic: {d}"));
    }

    // A hardware model with every fault strategy disabled must agree with
    // the reference semantics bit-for-bit, even though approximate data
    // still flows through its accounting.
    let cfg = HwConfig::for_level(Level::Mild).with_mask(StrategyMask::NONE);
    let hw = Rc::new(RefCell::new(Hardware::new(cfg, seed)));
    let f = match run(tp, ExecMode::Faulty(hw)) {
        Ok(o) => o,
        Err(e) => return Some(format!("zero-fault hardware run trapped: {e}")),
    };
    if let Some(d) = outcome_divergence(&r1, &f) {
        return Some(format!("zero-fault hardware diverged from reliable semantics: {d}"));
    }
    None
}

/// Structural, bit-exact comparison of two run outcomes (floats compare by
/// bit pattern, so NaNs and signed zeros must match exactly too).
fn outcome_divergence(a: &RunOutcome, b: &RunOutcome) -> Option<String> {
    if !value_eq(&a.value, &b.value) {
        return Some(format!("main value {} != {}", a.value.describe(), b.value.describe()));
    }
    if a.heap.len() != b.heap.len() {
        return Some(format!("heap size {} != {}", a.heap.len(), b.heap.len()));
    }
    for (i, (ea, eb)) in a.heap.iter().zip(&b.heap).enumerate() {
        match (ea, eb) {
            (HeapEntry::Object(oa), HeapEntry::Object(ob)) => {
                if oa.class != ob.class || oa.qual != ob.qual {
                    return Some(format!("heap[{i}] object identity differs"));
                }
                if oa.fields.len() != ob.fields.len() {
                    return Some(format!("heap[{i}] field count differs"));
                }
                for (name, va) in &oa.fields {
                    match ob.fields.get(name) {
                        Some(vb) if value_eq(va, vb) => {}
                        Some(vb) => {
                            return Some(format!(
                                "heap[{i}].{name}: {} != {}",
                                va.describe(),
                                vb.describe()
                            ));
                        }
                        None => return Some(format!("heap[{i}] missing field {name}")),
                    }
                }
            }
            (HeapEntry::Array(aa), HeapEntry::Array(ab)) => {
                if aa.elem_approx != ab.elem_approx || aa.values.len() != ab.values.len() {
                    return Some(format!("heap[{i}] array shape differs"));
                }
                for (j, (va, vb)) in aa.values.iter().zip(&ab.values).enumerate() {
                    if !value_eq(va, vb) {
                        return Some(format!(
                            "heap[{i}][{j}]: {} != {}",
                            va.describe(),
                            vb.describe()
                        ));
                    }
                }
            }
            _ => return Some(format!("heap[{i}] entry kind differs")),
        }
    }
    None
}

fn value_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Rebuilds the failure predicate for a violation, for use with
/// [`crate::shrink::shrink_source`].
///
/// The predicate re-derives the violated property from candidate *source
/// text* alone, so the shrinker preserves the interesting behaviour rather
/// than the incidental program. Mutation failures are re-derived from the
/// candidate (a shrunk program fails if *any* of its mutants survives or
/// misreports), which keeps the predicate meaningful as the program
/// shrinks.
pub fn violation_fails<'a>(
    oracle: OracleKind,
    opts: &'a OracleOpts,
) -> Box<dyn Fn(&str) -> bool + 'a> {
    match oracle {
        OracleKind::WellTyped => Box::new(|src: &str| enerj_lang::compile(src).is_err()),
        OracleKind::MutationSoundness => Box::new(|src: &str| {
            enerj_lang::compile(src)
                .is_ok_and(|tp| mutants(&tp).iter().any(|m| check(m.program.clone()).is_ok()))
        }),
        OracleKind::MutationPrecision => Box::new(|src: &str| {
            enerj_lang::compile(src).is_ok_and(|tp| {
                mutants(&tp)
                    .iter()
                    .any(|m| check(m.program.clone()).is_err_and(|e| !m.explains(e.kind, e.span)))
            })
        }),
        OracleKind::Roundtrip => Box::new(|src: &str| roundtrip_divergence(src).is_some()),
        OracleKind::NonInterference => Box::new(move |src: &str| {
            enerj_lang::compile(src).is_ok_and(|tp| {
                !tp.program.uses_endorse()
                    && check_non_interference(&tp, opts.chaos_seeds.iter().copied()).is_err()
            })
        }),
        OracleKind::Determinism => Box::new(|src: &str| {
            enerj_lang::compile(src).is_ok_and(|tp| determinism_divergence(&tp, 0).is_some())
        }),
    }
}
