//! Type-directed generation of well-typed FEnerJ programs.
//!
//! The generator builds programs that typecheck *by construction*: every
//! expression is produced against a target type, and the construction rules
//! mirror the checker's subtyping judgement (`precise <: q` for primitives,
//! `context <: approx`, invariant array elements, class subtyping by
//! hierarchy). On top of well-typedness the generator maintains runtime
//! invariants so that generated programs also *run* without trapping under
//! every execution mode:
//!
//! * every dereferenced receiver is `this`, a parameter, or a local bound
//!   to `new`/`new []` and only ever reassigned non-null values;
//! * integer `/` and `%` always take a nonzero literal right operand
//!   (precise integer division by zero traps; approximate doesn't — but a
//!   *statically precise* operand pair runs precisely even when the target
//!   qualifier is `approx`, so the literal guard is unconditional);
//! * arrays are allocated with literal length [`ARRAY_LEN`] and indexed
//!   with literals below it;
//! * loops count a frozen local down from a literal, so they terminate;
//! * method calls follow a DAG (a body only calls methods created before
//!   it), so there is no recursion and call depth is bounded.
//!
//! The output is *source text*: the generated AST is printed with
//! [`enerj_lang::pretty`] and handed to the rest of the pipeline as a
//! string, exactly as a user program would arrive. (This also means every
//! generated case exercises the printer; oracle 3 re-checks it explicitly.)

use enerj_lang::ast::{
    BinOp, ClassDecl, Expr, ExprKind, FieldDecl, MethodDecl, MethodQual, NodeId, Program,
};
use enerj_lang::classtable::ClassTable;
use enerj_lang::error::Span;
use enerj_lang::pretty;
use enerj_lang::types::{BaseType, Qual, Type};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every generated array has this literal length; indices are literals in
/// `0..ARRAY_LEN`, so bounds traps are impossible by construction.
pub const ARRAY_LEN: i64 = 4;

/// Tuning knobs for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of classes (at least 1 is always generated).
    pub max_classes: usize,
    /// Whether `endorse(e)` may appear. With `false` the generated program
    /// is endorse-free and eligible for the noninterference oracle.
    pub allow_endorse: bool,
    /// Maximum expression nesting depth.
    pub max_depth: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_classes: 3, allow_endorse: true, max_depth: 3 }
    }
}

/// Generates the source text of a well-typed FEnerJ program.
///
/// Deterministic in `(seed, cfg)`: the same pair always yields the same
/// source. The result is meant to be fed to `enerj_lang::compile`; the
/// well-typed oracle asserts that this never fails.
pub fn generate_source(seed: u64, cfg: &GenConfig) -> String {
    // Decorrelate from callers that pass small sequential seeds.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let skeleton = gen_skeleton(&mut rng, cfg);
    let table = ClassTable::build(&skeleton.program)
        .expect("generator skeleton must produce a valid class table");

    let mut classes = skeleton.program.classes.clone();
    for m in &skeleton.methods {
        let class_name = classes[m.class_idx].name.clone();
        let decl = &classes[m.class_idx].methods[m.method_idx];
        let this_qual = match (decl.qual, m.has_sibling) {
            (MethodQual::Approx, _) => Qual::Approx,
            (MethodQual::Precise, true) => Qual::Precise,
            (MethodQual::Precise, false) => Qual::Context,
        };
        let ret = decl.ret.clone();
        let params = decl.params.clone();
        let mut bg = BodyGen {
            rng: &mut rng,
            table: &table,
            class_names: &skeleton.class_names,
            methods: &skeleton.methods,
            cfg,
            ctx: Some((class_name, this_qual)),
            rank_budget: m.rank,
            env: params
                .iter()
                .map(|(name, ty)| Binding {
                    name: name.clone(),
                    ty: ty.clone(),
                    nonnull: true,
                    frozen: false,
                })
                .collect(),
            next_var: 0,
            loop_depth: 0,
        };
        let body = bg.gen_body(&ret);
        classes[m.class_idx].methods[m.method_idx].body = body;
    }

    let mut bg = BodyGen {
        rng: &mut rng,
        table: &table,
        class_names: &skeleton.class_names,
        methods: &skeleton.methods,
        cfg,
        ctx: None,
        rank_budget: usize::MAX,
        env: Vec::new(),
        next_var: 0,
        loop_depth: 0,
    };
    let main = bg.gen_main();

    pretty::program_to_string(&Program { classes, main })
}

// ---------------------------------------------------------------------------
// Skeleton: classes, fields and method signatures (bodies filled in later).
// ---------------------------------------------------------------------------

struct MethodMeta {
    class_idx: usize,
    method_idx: usize,
    class: String,
    name: String,
    /// Family index in global creation order; a body may only call methods
    /// whose family (both overloads share the index) ranks strictly below
    /// its own, so the call graph is a DAG and recursion is impossible.
    rank: usize,
    has_sibling: bool,
}

struct Skeleton {
    program: Program,
    class_names: Vec<String>,
    methods: Vec<MethodMeta>,
}

fn e(kind: ExprKind) -> Expr {
    // Ids and spans are irrelevant: the AST is printed to source and
    // reparsed before anything downstream looks at it.
    Expr { id: NodeId(0), span: Span::default(), kind }
}

fn int_lit(v: i64) -> Expr {
    e(ExprKind::IntLit(v))
}

fn gen_skeleton(rng: &mut StdRng, cfg: &GenConfig) -> Skeleton {
    let n_classes = rng.gen_range(1..=cfg.max_classes.max(1));
    let class_names: Vec<String> = (0..n_classes).map(|i| format!("K{i}")).collect();

    let mut field_counter = 0usize;
    let mut classes: Vec<ClassDecl> = Vec::new();
    for i in 0..n_classes {
        let superclass = if i > 0 && rng.gen_bool(0.35) {
            Some(class_names[rng.gen_range(0..i)].clone())
        } else {
            None
        };
        let n_fields = rng.gen_range(2..=5);
        let fields = (0..n_fields)
            .map(|_| {
                let name = format!("f{field_counter}");
                field_counter += 1;
                FieldDecl { ty: gen_field_type(rng, &class_names), name, span: Span::default() }
            })
            .collect();
        classes.push(ClassDecl {
            name: class_names[i].clone(),
            superclass,
            fields,
            methods: Vec::new(),
            span: Span::default(),
        });
    }

    let mut methods = Vec::new();
    let mut family = 0usize;
    for class_idx in 0..n_classes {
        for _ in 0..rng.gen_range(0..=2usize) {
            let name = format!("m{family}");
            let ret =
                gen_prim_type(rng, &[(Qual::Precise, 40), (Qual::Approx, 35), (Qual::Context, 25)]);
            let params: Vec<(String, Type)> = (0..rng.gen_range(0..=2usize))
                .map(|p| {
                    let ty = if rng.gen_bool(0.25) {
                        let q = if rng.gen_bool(0.5) { Qual::Precise } else { Qual::Approx };
                        let c = class_names[rng.gen_range(0..n_classes)].clone();
                        Type::new(q, BaseType::Class(c))
                    } else {
                        gen_prim_type(
                            rng,
                            &[(Qual::Precise, 40), (Qual::Approx, 35), (Qual::Context, 25)],
                        )
                    };
                    (format!("p{family}_{p}"), ty)
                })
                .collect();
            let has_sibling = rng.gen_bool(0.35);
            let placeholder = int_lit(0);
            let quals: &[MethodQual] = if has_sibling {
                &[MethodQual::Precise, MethodQual::Approx]
            } else {
                &[MethodQual::Precise]
            };
            for &qual in quals {
                classes[class_idx].methods.push(MethodDecl {
                    ret: ret.clone(),
                    name: name.clone(),
                    params: params.clone(),
                    qual,
                    body: placeholder.clone(),
                    span: Span::default(),
                });
                methods.push(MethodMeta {
                    class_idx,
                    method_idx: classes[class_idx].methods.len() - 1,
                    class: class_names[class_idx].clone(),
                    name: name.clone(),
                    rank: family,
                    has_sibling,
                });
            }
            family += 1;
        }
    }

    Skeleton { program: Program { classes, main: int_lit(0) }, class_names, methods }
}

fn gen_prim_type(rng: &mut StdRng, quals: &[(Qual, u32)]) -> Type {
    let base = if rng.gen_bool(0.6) { BaseType::Int } else { BaseType::Float };
    Type::new(pick_weighted(rng, quals), base)
}

fn pick_weighted(rng: &mut StdRng, quals: &[(Qual, u32)]) -> Qual {
    let total: u32 = quals.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (q, w) in quals {
        if roll < *w {
            return *q;
        }
        roll -= w;
    }
    quals[0].0
}

fn gen_field_type(rng: &mut StdRng, class_names: &[String]) -> Type {
    let roll = rng.gen_range(0..100);
    if roll < 15 {
        // Array field: the written qualifier is the *element* qualifier;
        // the array reference itself is precise (parser `ty()` rule).
        let elem =
            gen_prim_type(rng, &[(Qual::Precise, 40), (Qual::Approx, 40), (Qual::Context, 20)]);
        Type::new(Qual::Precise, BaseType::Array(Box::new(elem)))
    } else if roll < 30 {
        let q = pick_weighted(rng, &[(Qual::Precise, 40), (Qual::Approx, 40), (Qual::Context, 20)]);
        let c = class_names[rng.gen_range(0..class_names.len())].clone();
        Type::new(q, BaseType::Class(c))
    } else {
        gen_prim_type(
            rng,
            &[(Qual::Precise, 30), (Qual::Approx, 35), (Qual::Context, 25), (Qual::Top, 10)],
        )
    }
}

// ---------------------------------------------------------------------------
// Body generation.
// ---------------------------------------------------------------------------

struct Binding {
    name: String,
    ty: Type,
    /// Whether the binding is statically known to hold a non-null value
    /// (and is only ever reassigned non-null values).
    nonnull: bool,
    /// Loop counters are frozen: only their own decrement may assign them.
    frozen: bool,
}

struct BodyGen<'a> {
    rng: &'a mut StdRng,
    table: &'a ClassTable,
    class_names: &'a [String],
    methods: &'a [MethodMeta],
    cfg: &'a GenConfig,
    /// `Some((class, this_qual))` inside a method body, `None` in `main`.
    ctx: Option<(String, Qual)>,
    /// Only method families with rank strictly below this are callable.
    rank_budget: usize,
    env: Vec<Binding>,
    next_var: u32,
    loop_depth: u32,
}

/// The checker's primitive-qualifier subtyping (`precise <: q`,
/// `context <: approx`, plus the base lattice).
fn prim_qual_sub(q1: Qual, q2: Qual) -> bool {
    q1.is_sub(q2) || q1 == Qual::Precise || (q1 == Qual::Context && q2 == Qual::Approx)
}

impl BodyGen<'_> {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = self.next_var;
        self.next_var += 1;
        format!("{prefix}{n}")
    }

    fn gen_main(&mut self) -> Expr {
        // A prefix of object (and maybe array) lets guarantees non-null
        // receivers exist everywhere below.
        let n_objs = self.rng.gen_range(1..=3usize);
        let mut prefix: Vec<(String, Type, Expr)> = Vec::new();
        for _ in 0..n_objs {
            let class = self.class_names[self.rng.gen_range(0..self.class_names.len())].clone();
            let q = if self.rng.gen_bool(0.5) { Qual::Precise } else { Qual::Approx };
            let ty = Type::new(q, BaseType::Class(class));
            prefix.push((self.fresh("o"), ty.clone(), e(ExprKind::New(ty))));
        }
        if self.rng.gen_bool(0.6) {
            let elem = gen_prim_type(self.rng, &[(Qual::Precise, 50), (Qual::Approx, 50)]);
            let ty = Type::new(Qual::Precise, BaseType::Array(Box::new(elem.clone())));
            prefix.push((
                self.fresh("a"),
                ty,
                e(ExprKind::NewArray(elem, Box::new(int_lit(ARRAY_LEN)))),
            ));
        }
        for (name, ty, _) in &prefix {
            self.env.push(Binding {
                name: name.clone(),
                ty: ty.clone(),
                nonnull: true,
                frozen: false,
            });
        }

        let q = if self.rng.gen_bool(0.6) { Qual::Precise } else { Qual::Approx };
        let b = if self.rng.gen_bool(0.6) { BaseType::Int } else { BaseType::Float };
        let mut body = self.gen_prim(q, &b, self.cfg.max_depth);
        for _ in 0..self.rng.gen_range(1..=3usize) {
            let stmt = self.gen_stmt(self.cfg.max_depth.saturating_sub(1));
            body = e(ExprKind::Seq(Box::new(stmt), Box::new(body)));
        }
        for (name, _, value) in prefix.into_iter().rev() {
            body = e(ExprKind::Let(name, Box::new(value), Box::new(body)));
        }
        self.env.clear();
        body
    }

    fn gen_body(&mut self, ret: &Type) -> Expr {
        let mut body = self.gen_prim(ret.qual, &ret.base, self.cfg.max_depth);
        if self.rng.gen_bool(0.6) {
            for _ in 0..self.rng.gen_range(1..=2usize) {
                let stmt = self.gen_stmt(self.cfg.max_depth.saturating_sub(1));
                body = e(ExprKind::Seq(Box::new(stmt), Box::new(body)));
            }
        }
        body
    }

    /// Generates an expression whose static type is a subtype of `(q, b)`.
    ///
    /// For the target `(Precise, b)` the result is *exactly* `precise b`
    /// (the only primitive subtype of precise), which is what exactness
    /// positions — conditions, indices, lengths — rely on.
    fn gen_prim(&mut self, q: Qual, b: &BaseType, d: u32) -> Expr {
        debug_assert!(b.is_prim());
        if d > 0 && self.rng.gen_bool(0.8) {
            match self.rng.gen_range(0..100u32) {
                0..=27 => self.gen_arith(q, b, d),
                28..=39 => {
                    if *b == BaseType::Int {
                        self.gen_compare(q, d)
                    } else {
                        self.gen_arith(q, b, d)
                    }
                }
                40..=50 => {
                    let cond = self.gen_cond(d - 1);
                    let t = self.gen_prim(q, b, d - 1);
                    let f = self.gen_prim(q, b, d - 1);
                    e(ExprKind::If(Box::new(cond), Box::new(t), Box::new(f)))
                }
                51..=63 => self.gen_let_around(q, b, d),
                64..=74 => {
                    let stmt = self.gen_stmt(d - 1);
                    let rest = self.gen_prim(q, b, d - 1);
                    e(ExprKind::Seq(Box::new(stmt), Box::new(rest)))
                }
                75..=84 => {
                    if self.cfg.allow_endorse {
                        let inner = self.gen_prim(Qual::Approx, b, d - 1);
                        e(ExprKind::Endorse(Box::new(inner)))
                    } else {
                        self.gen_arith(q, b, d)
                    }
                }
                _ => match self.try_gen_call(q, b, d) {
                    Some(call) => call,
                    None => self.gen_arith(q, b, d),
                },
            }
        } else {
            self.gen_prim_leaf(q, b)
        }
    }

    fn gen_literal(&mut self, b: &BaseType) -> Expr {
        match b {
            BaseType::Int => int_lit(self.rng.gen_range(0..100)),
            _ => e(ExprKind::FloatLit(self.rng.gen_range(0..400) as f64 / 8.0)),
        }
    }

    /// A leaf of type `<: (q, b)`: a variable, field or element read when
    /// one is available, otherwise a (precise) literal.
    fn gen_prim_leaf(&mut self, q: Qual, b: &BaseType) -> Expr {
        enum Src {
            Var(usize),
            ThisField(String),
            VarField(usize, String),
            Elem(usize),
        }
        let mut sources: Vec<Src> = Vec::new();
        for (i, bind) in self.env.iter().enumerate() {
            match &bind.ty.base {
                bb if bb.is_prim() && bb == b && prim_qual_sub(bind.ty.qual, q) => {
                    sources.push(Src::Var(i));
                }
                BaseType::Class(c) if bind.nonnull => {
                    for (fname, fty) in self.table.all_fields(c) {
                        let at = fty.adapt(bind.ty.qual);
                        if at.base == *b && prim_qual_sub(at.qual, q) {
                            sources.push(Src::VarField(i, fname));
                        }
                    }
                }
                BaseType::Array(elem)
                    if bind.nonnull && elem.base == *b && prim_qual_sub(elem.qual, q) =>
                {
                    sources.push(Src::Elem(i));
                }
                _ => {}
            }
        }
        if let Some((class, this_qual)) = self.ctx.clone() {
            for (fname, fty) in self.table.all_fields(&class) {
                let at = fty.adapt(this_qual);
                if at.base == *b && prim_qual_sub(at.qual, q) {
                    sources.push(Src::ThisField(fname));
                }
            }
        }
        if sources.is_empty() || self.rng.gen_bool(0.3) {
            return self.gen_literal(b);
        }
        let idx = self.rng.gen_range(0..sources.len());
        match &sources[idx] {
            Src::Var(i) => e(ExprKind::Var(self.env[*i].name.clone())),
            Src::ThisField(f) => e(ExprKind::FieldGet(Box::new(e(ExprKind::This)), f.clone())),
            Src::VarField(i, f) => e(ExprKind::FieldGet(
                Box::new(e(ExprKind::Var(self.env[*i].name.clone()))),
                f.clone(),
            )),
            Src::Elem(i) => e(ExprKind::Index(
                Box::new(e(ExprKind::Var(self.env[*i].name.clone()))),
                Box::new(int_lit(self.rng.gen_range(0..ARRAY_LEN))),
            )),
        }
    }

    fn gen_arith(&mut self, q: Qual, b: &BaseType, d: u32) -> Expr {
        let is_int = *b == BaseType::Int;
        let op = match self.rng.gen_range(0..5u32) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            3 => BinOp::Div,
            _ => BinOp::Rem,
        };
        let lhs = self.gen_prim(q, b, d - 1);
        // Integer `/`/`%` takes a nonzero literal divisor: a statically
        // precise operand pair runs precisely even under an approximate
        // target qualifier, and precise division by zero traps.
        let rhs = if is_int && matches!(op, BinOp::Div | BinOp::Rem) {
            int_lit(self.rng.gen_range(1..10))
        } else {
            self.gen_prim(q, b, d - 1)
        };
        e(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn gen_compare(&mut self, q: Qual, d: u32) -> Expr {
        let op = match self.rng.gen_range(0..6u32) {
            0 => BinOp::Eq,
            1 => BinOp::Ne,
            2 => BinOp::Lt,
            3 => BinOp::Le,
            4 => BinOp::Gt,
            _ => BinOp::Ge,
        };
        let opb = if self.rng.gen_bool(0.7) { BaseType::Int } else { BaseType::Float };
        let lhs = self.gen_prim(q, &opb, d - 1);
        let rhs = self.gen_prim(q, &opb, d - 1);
        e(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    /// An exactly-`precise int` condition, biased toward comparisons.
    fn gen_cond(&mut self, d: u32) -> Expr {
        if d > 0 && self.rng.gen_bool(0.7) {
            self.gen_compare(Qual::Precise, d)
        } else {
            self.gen_prim(Qual::Precise, &BaseType::Int, d)
        }
    }

    fn gen_let_around(&mut self, q: Qual, b: &BaseType, d: u32) -> Expr {
        let (name, ty, value, nonnull) = self.gen_binding(d - 1);
        self.env.push(Binding { name: name.clone(), ty, nonnull, frozen: false });
        let body = self.gen_prim(q, b, d - 1);
        self.env.pop();
        e(ExprKind::Let(name, Box::new(value), Box::new(body)))
    }

    /// A fresh local binding: (name, declared type, initializer, nonnull).
    fn gen_binding(&mut self, d: u32) -> (String, Type, Expr, bool) {
        let name = self.fresh("x");
        let roll = self.rng.gen_range(0..100u32);
        if roll < 50 {
            let mut quals = vec![(Qual::Precise, 40), (Qual::Approx, 40)];
            if self.ctx.is_some() {
                quals.push((Qual::Context, 20));
            }
            let ty = gen_prim_type(self.rng, &quals);
            let value = self.gen_prim(ty.qual, &ty.base, d);
            // The declared type is the target the initializer was generated
            // against; its actual type may be a strict subtype, which is
            // exactly what `let` permits.
            (name, ty, value, false)
        } else if roll < 80 {
            let q = if self.rng.gen_bool(0.5) { Qual::Precise } else { Qual::Approx };
            let class = self.class_names[self.rng.gen_range(0..self.class_names.len())].clone();
            let ty = Type::new(q, BaseType::Class(class.clone()));
            let value = self.gen_class_expr(q, &class, true, d);
            (name, ty, value, true)
        } else {
            let mut equals = vec![(Qual::Precise, 40), (Qual::Approx, 40)];
            if self.ctx.is_some() {
                equals.push((Qual::Context, 20));
            }
            let elem = gen_prim_type(self.rng, &equals);
            let ty = Type::new(Qual::Precise, BaseType::Array(Box::new(elem.clone())));
            let value = e(ExprKind::NewArray(elem, Box::new(int_lit(ARRAY_LEN))));
            (name, ty, value, true)
        }
    }

    /// An expression of class type `q class` (exact qualifier, possibly a
    /// subclass). With `nonnull`, the value is statically non-null.
    fn gen_class_expr(&mut self, q: Qual, class: &str, nonnull: bool, d: u32) -> Expr {
        if !nonnull && self.rng.gen_bool(0.2) {
            return e(ExprKind::Null);
        }
        enum Src {
            Var(usize),
            This,
        }
        let mut sources: Vec<Src> = Vec::new();
        for (i, bind) in self.env.iter().enumerate() {
            if let BaseType::Class(c) = &bind.ty.base {
                if bind.ty.qual == q
                    && self.table.is_subclass(c, class)
                    && (!nonnull || bind.nonnull)
                {
                    sources.push(Src::Var(i));
                }
            }
        }
        if let Some((c, tq)) = &self.ctx {
            if *tq == q && self.table.is_subclass(c, class) {
                sources.push(Src::This);
            }
        }
        if !sources.is_empty() && self.rng.gen_bool(0.5) {
            let idx = self.rng.gen_range(0..sources.len());
            return match sources[idx] {
                Src::Var(i) => e(ExprKind::Var(self.env[i].name.clone())),
                Src::This => e(ExprKind::This),
            };
        }
        // An upcast through a strict subclass, occasionally.
        let subclasses: Vec<&String> = self
            .class_names
            .iter()
            .filter(|c| c.as_str() != class && self.table.is_subclass(c, class))
            .collect();
        if d > 0 && !subclasses.is_empty() && self.rng.gen_bool(0.3) {
            let sub = subclasses[self.rng.gen_range(0..subclasses.len())].clone();
            let inner = self.gen_class_expr(q, &sub, nonnull, d - 1);
            return e(ExprKind::Cast(
                Type::new(q, BaseType::Class(class.to_owned())),
                Box::new(inner),
            ));
        }
        let target = if subclasses.is_empty() || self.rng.gen_bool(0.7) {
            class.to_owned()
        } else {
            subclasses[self.rng.gen_range(0..subclasses.len())].clone()
        };
        e(ExprKind::New(Type::new(q, BaseType::Class(target))))
    }

    fn try_gen_call(&mut self, q: Qual, b: &BaseType, d: u32) -> Option<Expr> {
        let mut order: Vec<usize> = (0..self.methods.len()).collect();
        for i in (1..order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for mi in order {
            let m = &self.methods[mi];
            if m.rank >= self.rank_budget {
                continue;
            }
            let class = m.class.clone();
            let name = m.name.clone();
            // Receiver: `this`, a matching non-null local, or a fresh `new`.
            let (recv, rq, recv_class): (Expr, Qual, String) = {
                let mut opts: Vec<(Expr, Qual, String)> = Vec::new();
                if let Some((c, tq)) = &self.ctx {
                    if self.table.is_subclass(c, &class) {
                        opts.push((e(ExprKind::This), *tq, c.clone()));
                    }
                }
                for bind in &self.env {
                    if let BaseType::Class(c) = &bind.ty.base {
                        if bind.nonnull && self.table.is_subclass(c, &class) {
                            opts.push((
                                e(ExprKind::Var(bind.name.clone())),
                                bind.ty.qual,
                                c.clone(),
                            ));
                        }
                    }
                }
                if opts.is_empty() || self.rng.gen_bool(0.4) {
                    let rq = if self.rng.gen_bool(0.5) { Qual::Precise } else { Qual::Approx };
                    let ty = Type::new(rq, BaseType::Class(class.clone()));
                    (e(ExprKind::New(ty)), rq, class.clone())
                } else {
                    let idx = self.rng.gen_range(0..opts.len());
                    opts.swap_remove(idx)
                }
            };
            let Some(sig) = self.table.msig(rq, &recv_class, &name) else { continue };
            if sig.ret.base != *b
                || !prim_qual_sub(sig.ret.qual, q)
                || sig.ret.has_lost()
                || sig.params.iter().any(Type::has_lost)
            {
                continue;
            }
            let args: Vec<Expr> = sig
                .params
                .iter()
                .map(|pt| match &pt.base {
                    BaseType::Class(c) => self.gen_class_expr(pt.qual, c, true, d - 1),
                    _ => self.gen_prim(pt.qual, &pt.base, d - 1),
                })
                .collect();
            return Some(e(ExprKind::Call(Box::new(recv), name, args)));
        }
        None
    }

    /// A side-effecting statement expression (its value is discarded).
    fn gen_stmt(&mut self, d: u32) -> Expr {
        enum Stmt {
            FieldSetThis(String),
            FieldSetVar(usize, String),
            VarSet(usize),
            IndexSet(usize),
            Loop,
        }
        let mut opts: Vec<Stmt> = Vec::new();
        if let Some((class, this_qual)) = self.ctx.clone() {
            for (fname, fty) in self.table.all_fields(&class) {
                if !fty.adapt(this_qual).has_lost() {
                    opts.push(Stmt::FieldSetThis(fname));
                }
            }
        }
        for (i, bind) in self.env.iter().enumerate() {
            match &bind.ty.base {
                BaseType::Class(c) if bind.nonnull => {
                    for (fname, fty) in self.table.all_fields(c) {
                        if !fty.adapt(bind.ty.qual).has_lost() {
                            opts.push(Stmt::FieldSetVar(i, fname));
                        }
                    }
                }
                BaseType::Array(_) if bind.nonnull => opts.push(Stmt::IndexSet(i)),
                bb if bb.is_prim() && !bind.frozen => opts.push(Stmt::VarSet(i)),
                BaseType::Class(_) if !bind.frozen => opts.push(Stmt::VarSet(i)),
                _ => {}
            }
        }
        if self.loop_depth == 0 && d > 0 {
            opts.push(Stmt::Loop);
            opts.push(Stmt::Loop);
        }
        if opts.is_empty() {
            return self.gen_prim(Qual::Approx, &BaseType::Int, d.min(1));
        }
        let choice = self.rng.gen_range(0..opts.len());
        match &opts[choice] {
            Stmt::FieldSetThis(fname) => {
                let (class, this_qual) = self.ctx.clone().expect("ctx present");
                let fty =
                    self.table.ftype(this_qual, &class, fname).expect("field listed by all_fields");
                let value = self.gen_sink_value(&fty, d);
                e(ExprKind::FieldSet(Box::new(e(ExprKind::This)), fname.clone(), Box::new(value)))
            }
            Stmt::FieldSetVar(i, fname) => {
                let (vname, vqual, vclass) = {
                    let bind = &self.env[*i];
                    let BaseType::Class(c) = &bind.ty.base else { unreachable!() };
                    (bind.name.clone(), bind.ty.qual, c.clone())
                };
                let fty =
                    self.table.ftype(vqual, &vclass, fname).expect("field listed by all_fields");
                let value = self.gen_sink_value(&fty, d);
                e(ExprKind::FieldSet(
                    Box::new(e(ExprKind::Var(vname))),
                    fname.clone(),
                    Box::new(value),
                ))
            }
            Stmt::VarSet(i) => {
                let (name, ty) = {
                    let bind = &self.env[*i];
                    (bind.name.clone(), bind.ty.clone())
                };
                let value = match &ty.base {
                    // Keep the nonnull invariant: locals are only ever
                    // reassigned non-null object values.
                    BaseType::Class(c) => self.gen_class_expr(ty.qual, &c.clone(), true, d),
                    _ => self.gen_prim(ty.qual, &ty.base, d),
                };
                e(ExprKind::VarSet(name, Box::new(value)))
            }
            Stmt::IndexSet(i) => {
                let (name, elem) = {
                    let bind = &self.env[*i];
                    let BaseType::Array(elem) = &bind.ty.base else { unreachable!() };
                    (bind.name.clone(), (**elem).clone())
                };
                let value = self.gen_prim(elem.qual, &elem.base, d);
                e(ExprKind::IndexSet(
                    Box::new(e(ExprKind::Var(name))),
                    Box::new(int_lit(self.rng.gen_range(0..ARRAY_LEN))),
                    Box::new(value),
                ))
            }
            Stmt::Loop => self.gen_loop(d),
        }
    }

    /// `let i = N in while (0 < i) { stmt; i := i - 1 }` — terminates by
    /// construction; the counter is frozen against other assignments.
    fn gen_loop(&mut self, d: u32) -> Expr {
        let counter = self.fresh("i");
        let iters = self.rng.gen_range(1..=3);
        self.env.push(Binding {
            name: counter.clone(),
            ty: Type::precise_int(),
            nonnull: false,
            frozen: true,
        });
        self.loop_depth += 1;
        let mut body = e(ExprKind::VarSet(
            counter.clone(),
            Box::new(e(ExprKind::Binary(
                BinOp::Sub,
                Box::new(e(ExprKind::Var(counter.clone()))),
                Box::new(int_lit(1)),
            ))),
        ));
        for _ in 0..self.rng.gen_range(1..=2usize) {
            let stmt = self.gen_stmt(d.saturating_sub(1));
            body = e(ExprKind::Seq(Box::new(stmt), Box::new(body)));
        }
        self.loop_depth -= 1;
        self.env.pop();
        let cond = e(ExprKind::Binary(
            BinOp::Lt,
            Box::new(int_lit(0)),
            Box::new(e(ExprKind::Var(counter.clone()))),
        ));
        e(ExprKind::Let(
            counter,
            Box::new(int_lit(iters)),
            Box::new(e(ExprKind::While(Box::new(cond), Box::new(body)))),
        ))
    }

    /// A value assignable to a sink of (adapted) type `ty`.
    fn gen_sink_value(&mut self, ty: &Type, d: u32) -> Expr {
        match &ty.base {
            BaseType::Class(c) => self.gen_class_expr(ty.qual, &c.clone(), false, d),
            BaseType::Array(elem) => {
                e(ExprKind::NewArray((**elem).clone(), Box::new(int_lit(ARRAY_LEN))))
            }
            _ => {
                // `top` sinks accept anything below top; pick a concrete side.
                let q = if ty.qual == Qual::Top {
                    if self.rng.gen_bool(0.5) {
                        Qual::Precise
                    } else {
                        Qual::Approx
                    }
                } else {
                    ty.qual
                };
                self.gen_prim(q, &ty.base, d)
            }
        }
    }
}
