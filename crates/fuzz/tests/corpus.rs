//! Replays every pinned counterexample and regression program in
//! `corpus/` through the conformance oracles.
//!
//! Each `.fej` file must round-trip through the pretty-printer with a
//! stable typecheck verdict; accepted programs must additionally execute
//! deterministically (including zero-fault hardware agreement), and
//! accepted endorse-free programs must satisfy noninterference.
//!
//! The expected verdict is encoded in the filename: `illtyped-*` must be
//! rejected, everything else must be accepted.

use std::path::PathBuf;

use enerj_fuzz::oracle::{determinism_divergence, roundtrip_divergence};
use enerj_lang::noninterference::check_non_interference;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../corpus")
}

#[test]
fn corpus_programs_replay_through_all_oracles() {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("corpus/ directory exists")
        .map(|e| e.expect("readable corpus entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "fej"))
        .collect();
    paths.sort();
    assert!(paths.len() >= 5, "corpus must pin at least 5 programs, found {}", paths.len());

    let mut accepted = 0usize;
    let mut rejected = 0usize;
    let mut endorse_free_accepted = 0usize;
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(path).unwrap();

        if let Some(d) = roundtrip_divergence(&source) {
            panic!("{name}: round-trip oracle violated: {d}");
        }
        let must_reject = name.starts_with("illtyped-");
        match enerj_lang::compile(&source) {
            Ok(tp) => {
                assert!(!must_reject, "{name}: ill-typed pin was accepted");
                accepted += 1;
                if let Some(d) = determinism_divergence(&tp, 0xc0ffee) {
                    panic!("{name}: determinism oracle violated: {d}");
                }
                if !tp.program.uses_endorse() {
                    endorse_free_accepted += 1;
                    check_non_interference(&tp, [1, 2, 3, 5, 8])
                        .unwrap_or_else(|e| panic!("{name}: noninterference violated: {e}"));
                }
            }
            Err(enerj_lang::CompileError::Type(e)) => {
                assert!(must_reject, "{name}: should be well-typed, got: {}", e.message);
                rejected += 1;
            }
            Err(e) => panic!("{name}: does not parse: {e}"),
        }
    }
    assert!(accepted >= 4, "corpus should hold several accepted programs, found {accepted}");
    assert!(rejected >= 1, "corpus should pin at least one ill-typed program");
    assert!(
        endorse_free_accepted >= 1,
        "corpus should pin at least one endorse-free program for the NI oracle"
    );
}
