//! Seeded conformance-fuzzing suite: the five differential oracles over a
//! deterministic batch of generated programs.
//!
//! The batch size is tunable with `ENERJ_FUZZ_CASES` (default 120), so CI
//! smoke stays fast while a deep run (`ENERJ_FUZZ_CASES=1000 cargo test`)
//! scales the same tests up without code changes.

use enerj_fuzz::gen::GenConfig;
use enerj_fuzz::mutate::mutants;
use enerj_fuzz::oracle::{run_case, OracleOpts};
use enerj_fuzz::shrink::shrink_source;
use enerj_lang::pretty::program_to_string;

fn cases() -> u64 {
    std::env::var("ENERJ_FUZZ_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(120)
}

/// Oracles 1–5 hold over the default-configuration batch, and the
/// mutation kill rate clears the 95% bar (it is in fact 100%: every
/// emitted mutant is ill-typed by construction).
#[test]
fn all_oracles_hold_over_seeded_batch() {
    let opts = OracleOpts::default();
    let mut total = 0usize;
    let mut killed = 0usize;
    for seed in 0..cases() {
        let report = run_case(seed, &opts);
        if let Some(v) = report.violations.first() {
            panic!("seed {seed}: {} oracle violated: {}\n{}", v.oracle, v.detail, v.source);
        }
        total += report.mutants;
        killed += report.killed;
    }
    assert!(total >= 100, "batch produced too few mutants to be meaningful: {total}");
    let rate = killed as f64 / total as f64;
    assert!(rate >= 0.95, "mutation kill rate {:.1}% below 95% ({killed}/{total})", rate * 100.0);
}

/// Oracle 4 at full strength: endorse-free generation, so *every* accepted
/// program is subject to noninterference, across several adversarial seeds.
#[test]
fn endorse_free_batch_satisfies_noninterference() {
    let opts = OracleOpts {
        gen: GenConfig { allow_endorse: false, ..GenConfig::default() },
        chaos_seeds: vec![1, 2, 3, 0xdead_beef, u64::MAX | 1],
    };
    let mut endorse_free = 0u64;
    for seed in 0..cases() {
        let report = run_case(seed, &opts);
        if let Some(v) = report.violations.first() {
            panic!("seed {seed}: {} oracle violated: {}\n{}", v.oracle, v.detail, v.source);
        }
        assert!(report.endorse_free, "seed {seed}: endorse-free mode emitted endorse");
        endorse_free += 1;
    }
    assert_eq!(endorse_free, cases());
}

/// The shrinker minimizes a failing program while preserving the failure:
/// pretty-printed ill-typed mutants shrink to a fraction of their original
/// size and are still rejected by the checker.
#[test]
fn shrinker_minimizes_rejected_mutants() {
    let rejected = |src: &str| enerj_lang::compile(src).is_err();
    let mut shrunk_any = false;
    for seed in 0..10u64 {
        let src = enerj_fuzz::gen::generate_source(seed, &GenConfig::default());
        let tp = enerj_lang::compile(&src).unwrap();
        let Some(mutant) = mutants(&tp).into_iter().next() else { continue };
        let mutant_src = program_to_string(&mutant.program);
        assert!(rejected(&mutant_src), "seed {seed}: mutant unexpectedly accepted");
        let small = shrink_source(&mutant_src, &rejected, 800);
        assert!(rejected(&small), "seed {seed}: shrinking lost the failure:\n{small}");
        assert!(small.len() <= mutant_src.len(), "seed {seed}: shrinking grew the program");
        if small.len() < mutant_src.len() / 2 {
            shrunk_any = true;
        }
    }
    assert!(shrunk_any, "shrinker never achieved a substantial reduction");
}

/// The generator is a pure function of its seed: same seed, same program;
/// different seeds disagree somewhere in the batch.
#[test]
fn generator_is_deterministic_in_its_seed() {
    let cfg = GenConfig::default();
    let a: Vec<String> = (0..20).map(|s| enerj_fuzz::gen::generate_source(s, &cfg)).collect();
    let b: Vec<String> = (0..20).map(|s| enerj_fuzz::gen::generate_source(s, &cfg)).collect();
    assert_eq!(a, b, "generator output depends on more than the seed");
    assert!(
        a.windows(2).any(|w| w[0] != w[1]),
        "twenty consecutive seeds produced identical programs"
    );
}
