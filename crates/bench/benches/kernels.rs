//! Criterion microbenchmarks: throughput of the benchmark kernels under
//! the simulator, and the cost of simulation itself (masked approximate
//! execution vs. full fault injection).

use criterion::{criterion_group, criterion_main, Criterion};
use enerj_apps::{all_apps, harness};
use enerj_hw::config::{HwConfig, Level, StrategyMask};

fn bench_reference_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("reference");
    group.sample_size(10);
    for app in all_apps() {
        group.bench_function(app.meta.name, |b| {
            b.iter(|| harness::reference(&app));
        });
    }
    group.finish();
}

fn bench_fault_injection_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggressive-vs-masked");
    group.sample_size(10);
    // FFT as the representative kernel: compare masked (counting-only)
    // execution against full aggressive fault injection.
    let app = all_apps().into_iter().find(|a| a.meta.name == "FFT").expect("FFT registered");
    let masked = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
    group.bench_function("fft-masked", |b| {
        b.iter(|| harness::measure_with(&app, masked, 1));
    });
    let full = HwConfig::for_level(Level::Aggressive);
    group.bench_function("fft-faulty", |b| {
        b.iter(|| harness::measure_with(&app, full, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_reference_runs, bench_fault_injection_overhead);
criterion_main!(benches);
