//! Criterion microbenchmarks for the fault-injection primitives: the
//! geometric-skip bit flipper across the probability range of Table 2, and
//! the per-operation cost of each functional-unit path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enerj_hw::config::{ErrorMode, HwConfig, Level};
use enerj_hw::{fault, Hardware};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_flip_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("flip_bits");
    for &p in &[1e-16, 1e-7, 1e-3, 1e-1] {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| fault::flip_bits(black_box(0xDEAD_BEEF_u64), 64, p, &mut rng));
        });
    }
    group.finish();
}

fn bench_unit_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional-units");
    for mode in ErrorMode::ALL {
        group.bench_function(format!("int-{mode}"), |b| {
            let cfg = HwConfig::for_level(Level::Aggressive).with_error_mode(mode);
            let mut hw = Hardware::new(cfg, 1);
            let mut i = 0u64;
            b.iter(|| {
                i = i.wrapping_add(1);
                hw.approx_int_result(black_box(i), 64)
            });
        });
    }
    group.bench_function("f64-width-reduction", |b| {
        let hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 1);
        b.iter(|| hw.approx_f64_operand(black_box(std::f64::consts::PI)));
    });
    group.bench_function("sram-read-aggressive", |b| {
        let mut hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 1);
        b.iter(|| hw.sram_read(black_box(0x1234_5678), 64, true));
    });
    group.finish();
}

criterion_group!(benches, bench_flip_bits, bench_unit_paths);
criterion_main!(benches);
