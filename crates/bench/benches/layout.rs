//! Criterion bench + ablation for the cache-line layout scheme (§4.1).
//!
//! DESIGN.md calls out the line-granularity layout as a design choice: the
//! fraction of an approximate array that actually lands on approximate
//! lines depends on the line size. This bench measures layout computation
//! cost across line sizes and prints (via the `approx-fraction` group
//! names) the achievable approximate fraction, supporting the paper's
//! remark that "a finer granularity of approximate memory storage would
//! mitigate or eliminate the resulting loss of approximation".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use enerj_hw::layout::{layout_array, layout_object, FieldSpec, ARRAY_HEADER_BYTES};
use std::hint::black_box;

fn bench_layout_line_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout-array");
    for &line in &[16usize, 32, 64, 128] {
        let l = layout_array(8, 512, true, line, ARRAY_HEADER_BYTES);
        // Encode the achieved approximate fraction in the bench id so the
        // ablation result is visible in the report.
        let id = format!("line{line}-frac{:.3}", l.approx_fraction());
        group.bench_with_input(BenchmarkId::from_parameter(id), &line, |b, &line| {
            b.iter(|| layout_array(black_box(8), black_box(512), true, line, ARRAY_HEADER_BYTES));
        });
    }
    group.finish();
}

fn bench_layout_objects(c: &mut Criterion) {
    let fields: Vec<FieldSpec> = (0..32)
        .map(|i| FieldSpec::new(if i % 2 == 0 { "p" } else { "a" }, 8, i % 2 == 1))
        .collect();
    c.bench_function("layout-object-32-fields", |b| {
        b.iter(|| layout_object(black_box(&fields), 64, 8));
    });
}

criterion_group!(benches, bench_layout_line_sizes, bench_layout_objects);
criterion_main!(benches);
