//! Regenerates **Table 3**: the applications, their QoS metrics and the
//! annotation density of the ports.
//!
//! Lines of code, declaration counts, annotation percentages and
//! endorsement counts are *measured from this repository's ports* (the
//! paper's column values describe the original Java ports); "Proportion
//! FP" is measured dynamically from a reference run, as in the paper. The
//! reference runs go through one parallel campaign whose report lands in
//! `results/BENCH_table3.json`.

use enerj_apps::all_apps;
use enerj_apps::trials::{run_campaign_with, TrialSpec};
use enerj_bench::cli::Options;
use enerj_bench::{finish_campaign, pct, render_table};

fn main() {
    let opts = Options::parse(std::env::args(), 1);
    let apps = all_apps();
    let specs: Vec<TrialSpec> = apps.iter().map(TrialSpec::reference).collect();
    let report = run_campaign_with(&specs, &opts.campaign_options());

    let mut rows = Vec::new();
    for (app, trial) in apps.iter().zip(&report.trials) {
        assert!(!trial.panicked(), "{}: reference run panicked", app.meta.name);
        let ann = app.meta.annotation_stats();
        let fp = trial.stats.fp_proportion();
        if opts.json {
            println!(
                "{{\"app\":\"{}\",\"metric\":\"{}\",\"loc\":{},\"fp\":{:.4},\"decls\":{},\"annotated\":{},\"endorsements\":{}}}",
                app.meta.name,
                app.meta.metric,
                ann.loc,
                fp,
                ann.total_decls,
                ann.annotated_decls,
                ann.endorsements
            );
        }
        rows.push(vec![
            app.meta.name.to_owned(),
            app.meta.metric.to_string(),
            ann.loc.to_string(),
            pct(fp),
            ann.total_decls.to_string(),
            format!("{:.0}%", ann.annotated_percent()),
            ann.endorsements.to_string(),
        ]);
    }
    if !opts.json {
        println!("Table 3: applications, QoS metrics and annotation density (this port)");
        println!();
        println!(
            "{}",
            render_table(
                &[
                    "Application",
                    "Error metric",
                    "LoC",
                    "Prop. FP",
                    "Decls",
                    "Annotated",
                    "Endorse-sites"
                ],
                &rows
            )
        );
        println!("LoC / declaration counts describe the Rust ports in crates/apps.");
    }
    finish_campaign("table3", &report, &opts);
}
