//! `schedbench` — the online significance-aware scheduler's budget
//! experiment: hold a per-campaign energy budget live, degrade the least
//! significant work first, and compare against every static single-level
//! baseline on the same workload and seeds.
//!
//! ```text
//! schedbench [--runs N] [--threads N] [--chunk N] [--json] [--quick]
//!            [--budget-pct P] [--meter sram|total]
//! ```
//!
//! The workload is every registered app (the paper's full suite),
//! round-robin interleaved, `--runs` evaluation trials per app. The budget
//! is `P%` (default 60) of the *measured* all-Precise metered cost —
//! exact integer quanta, not an estimate. The binary then:
//!
//! 1. profiles the workload on the tuner seed stream (significance seeds),
//! 2. runs the four static single-level baselines,
//! 3. runs the scheduled campaign,
//! 4. re-runs it at one and two worker threads and verifies the three
//!    campaigns are bit-identical (exit code 1 on any divergence — the
//!    controller's determinism claim is a hard gate, not a report field),
//! 5. writes the `enerj-sched/1` report to `results/BENCH_sched.json`.
//!
//! The default meter is SRAM quanta: Table 2's supply-voltage knob is
//! where the paper's approximation actually buys energy headroom, so an
//! SRAM budget at 60% is meetable while the DRAM-dominated total (refresh
//! savings are small) has a feasibility floor near 80%.

use std::process::ExitCode;

use enerj_apps::all_apps;
use enerj_apps::scheduler::{
    profile_workload, run_scheduled, AppProfile, SchedLevel, SchedOutcome, SchedulerConfig,
    Workload,
};
use enerj_apps::trials::{run_campaign_with, CampaignOptions, TrialResult};
use enerj_bench::sched::{BaselineRow, SchedReport, ScheduledRow};
use enerj_bench::{bench_report_path, render_table, Options};
use enerj_hw::energy::QuantaMeter;
use enerj_hw::quanta::EnergyQuanta;

/// Pulls a `--flag value` pair out of the free-flag list.
fn take_value(flags: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = flags.iter().position(|f| f == flag)?;
    assert!(i + 1 < flags.len(), "{flag} needs a value");
    let value = flags.remove(i + 1);
    flags.remove(i);
    Some(value)
}

/// Two scheduled runs must agree on every bit that matters; returns a
/// human-readable description of the first divergence.
fn first_divergence(
    a: &[TrialResult],
    a_out: &SchedOutcome,
    b: &[TrialResult],
    b_out: &SchedOutcome,
) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("trial counts differ: {} vs {}", a.len(), b.len()));
    }
    for (x, y) in a.iter().zip(b) {
        if x.scheduled_level != y.scheduled_level {
            return Some(format!(
                "trial {}: scheduled {:?} vs {:?}",
                x.index, x.scheduled_level, y.scheduled_level
            ));
        }
        if x.error.to_bits() != y.error.to_bits() {
            return Some(format!("trial {}: error {} vs {}", x.index, x.error, y.error));
        }
        if x.energy_quanta != y.energy_quanta {
            return Some(format!("trial {}: energy quanta differ", x.index));
        }
        if x.stats != y.stats || x.fault_counts != y.fault_counts {
            return Some(format!("trial {}: telemetry differs", x.index));
        }
        if x.attempts != y.attempts || x.recovered_at_level != y.recovered_at_level {
            return Some(format!("trial {}: recovery differs", x.index));
        }
    }
    if a_out.spent != b_out.spent {
        return Some(format!("spend differs: {} vs {}", a_out.spent, b_out.spent));
    }
    if a_out.level_counts != b_out.level_counts {
        return Some("level census differs".to_owned());
    }
    None
}

fn main() -> ExitCode {
    let mut opts = Options::parse(std::env::args(), 20);
    let quick = opts.has_flag("--quick");
    if quick {
        opts.flags.retain(|f| f != "--quick");
        opts.runs = opts.runs.min(6);
    }
    let budget_pct: u32 = take_value(&mut opts.flags, "--budget-pct")
        .map(|v| v.parse().expect("--budget-pct needs an integer"))
        .unwrap_or(60);
    let meter = take_value(&mut opts.flags, "--meter")
        .map(|v| QuantaMeter::parse(&v).expect("--meter needs `sram` or `total`"))
        .unwrap_or(QuantaMeter::Sram);
    assert!(opts.flags.is_empty(), "unknown flags: {:?}", opts.flags);

    let campaign_opts = opts.campaign_options();
    let workload = Workload::new(all_apps(), opts.runs);
    eprintln!(
        "schedbench: {} apps x {} runs = {} trials, {} meter, budget {budget_pct}% of precise",
        workload.apps.len(),
        workload.runs,
        workload.len(),
        meter.name()
    );

    // Significance seeds from the disjoint tuner stream.
    let profile_runs = if quick { 2 } else { 5 };
    let profiles: Vec<AppProfile> =
        profile_workload(&workload, meter, profile_runs, &campaign_opts);

    // Static single-level baselines: same apps, same seeds, no scheduler.
    let mut baselines = Vec::new();
    for level in SchedLevel::ALL {
        let report = run_campaign_with(&workload.static_specs(level), &campaign_opts);
        let mean_error = report.mean_error();
        baselines.push((level, meter.spent(&report.energy_quanta_totals()), mean_error));
    }
    let precise_cost = baselines[0].1;
    let budget = EnergyQuanta::new(precise_cost.get() * u128::from(budget_pct) / 100);

    // The scheduled campaign, plus the determinism gate: one- and
    // two-thread re-runs must be bit-identical to the main run.
    let cfg = SchedulerConfig { budget, meter, epoch: 0, recovery: None };
    let (report_main, outcome) = run_scheduled(&workload, &profiles, &cfg, &campaign_opts);
    let mut identical = true;
    let mut reference: Option<(Vec<TrialResult>, SchedOutcome)> = None;
    for threads in [1usize, 2] {
        let verify_opts = CampaignOptions { threads, ..campaign_opts.clone() };
        let (r, o) = run_scheduled(&workload, &profiles, &cfg, &verify_opts);
        if let Some(diff) = first_divergence(&report_main.trials, &outcome, &r.trials, &o) {
            eprintln!("schedbench: DIVERGENCE at {threads} thread(s): {diff}");
            identical = false;
        }
        if let Some((rt, ro)) = &reference {
            if let Some(diff) = first_divergence(rt, ro, &r.trials, &o) {
                eprintln!("schedbench: DIVERGENCE between verification runs: {diff}");
                identical = false;
            }
        }
        reference = Some((r.trials, o));
    }

    let census: [u64; 4] = outcome.level_counts.iter().fold([0; 4], |mut acc, c| {
        for (a, n) in acc.iter_mut().zip(c) {
            *a += n;
        }
        acc
    });
    let sched_report = SchedReport {
        quick,
        meter,
        budget_pct,
        trials: workload.len(),
        epoch_len: outcome.epoch_len,
        precise_cost_quanta: precise_cost,
        budget_quanta: budget,
        identical,
        scheduled: ScheduledRow {
            spent_quanta: outcome.spent,
            budget_met: outcome.budget_met,
            mean_error: outcome.summary.mean_error,
            qos: outcome.qos(),
            implausible: outcome.implausible,
            level_counts: census,
        },
        baselines: baselines
            .iter()
            .map(|&(level, spent, mean_error)| BaselineRow {
                level,
                spent_quanta: spent,
                mean_error,
                qos: 1.0 - mean_error,
                fits_budget: spent <= budget,
            })
            .collect(),
    };

    let json = sched_report.to_json();
    if opts.json {
        println!("{json}");
    } else {
        let mut rows = Vec::new();
        for b in &sched_report.baselines {
            rows.push(vec![
                format!("static {}", b.level),
                b.spent_quanta.to_string(),
                format!("{:.4}", b.spent_quanta.get() as f64 / precise_cost.get() as f64),
                format!("{:.4}", b.qos),
                if b.fits_budget { "yes" } else { "no" }.to_owned(),
            ]);
        }
        rows.push(vec![
            "scheduled".to_owned(),
            outcome.spent.to_string(),
            format!("{:.4}", outcome.spent.get() as f64 / precise_cost.get() as f64),
            format!("{:.4}", outcome.qos()),
            if outcome.budget_met { "yes" } else { "NO" }.to_owned(),
        ]);
        println!(
            "Budget: {budget} {} quanta ({budget_pct}% of all-Precise {precise_cost})",
            meter.name()
        );
        println!();
        println!(
            "{}",
            render_table(&["Campaign", "Spent (quanta)", "vs precise", "QoS", "In budget"], &rows)
        );
        println!(
            "Scheduled census: Precise {} / Mild {} / Medium {} / Aggressive {}  \
             (epoch {}, {} implausible scalar(s))",
            census[0], census[1], census[2], census[3], outcome.epoch_len, outcome.implausible
        );
        let best_static = sched_report
            .baselines
            .iter()
            .filter(|b| b.fits_budget)
            .max_by(|a, b| a.qos.total_cmp(&b.qos));
        match best_static {
            Some(b) if outcome.budget_met => println!(
                "Scheduled QoS {:.4} vs best in-budget static ({}) {:.4}: {}",
                outcome.qos(),
                b.level,
                b.qos,
                if outcome.qos() > b.qos { "scheduler wins" } else { "static wins" }
            ),
            _ => println!("No in-budget comparison available."),
        }
        println!("Bit-identity across 1/2/{} thread(s): {}", report_main.threads, identical);
    }
    if opts.trace {
        for (a, counts) in outcome.level_counts.iter().enumerate() {
            eprintln!(
                "  {:<14} Precise {:>3} / Mild {:>3} / Medium {:>3} / Aggressive {:>3}",
                workload.apps[a].meta.name, counts[0], counts[1], counts[2], counts[3]
            );
        }
    }

    let path = bench_report_path("sched");
    match std::fs::write(&path, json + "\n") {
        Ok(()) => eprintln!("sched report -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    if identical {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
