//! `campaign_bench` — throughput and memory benchmarks for the streaming
//! campaign engine.
//!
//! Measures [`trials::run_campaign_streamed`] (lazy specs, chunked work
//! stealing, bounded reorder window, per-worker scratch) against a faithful
//! in-binary replica of the pre-streaming slot runner: pre-materialized
//! spec vector, one `Mutex<Option<TrialResult>>` slot per trial, one atomic
//! claim per trial, a fresh workspace per trial, and full result retention.
//! The workload is a tiny synthetic app (a generated input plus a few
//! approximate ops) so runner dispatch and input handling — not app
//! compute — dominate, which is the regime million-trial campaigns live in.
//!
//! ```text
//! campaign_bench [--quick] [--threads N] [--chunk N] [--json]
//! ```
//!
//! Three sections, in run order:
//!
//! 1. **memory** — an N-trial campaign streamed to an NDJSON sink (a temp
//!    file, deleted afterwards), run *first* so the process high-water mark
//!    (`VmHWM`) reflects the streaming engine alone: peak RSS stays bounded
//!    by the reorder window, not the campaign length.
//! 2. **identity** — the slot replica, the in-memory engine
//!    ([`trials::run_campaign_with`]) and the streamed engine (lazy source,
//!    collecting sink) run the same campaign; every trial must agree bit
//!    for bit and the process exits 1 if any does not.
//! 3. **engine** — trials/sec for the streamed engine at several thread
//!    counts and chunk sizes versus the slot replica at the same thread
//!    count; the `speedup` column is the meaningful, host-independent
//!    number.
//!
//! Results land in `results/BENCH_campaignperf.json` (schema
//! `enerj-campaignperf/1`); check with `validate_schema --campaignperf`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use enerj_apps::harness::{self, FAULT_SEED_BASE};
use enerj_apps::meta::AppMeta;
use enerj_apps::qos::{output_error, Output, QosMetric};
use enerj_apps::trials::{
    self, CampaignOptions, NdjsonSink, NullSink, SpecFn, TrialResult, TrialSpec, VecSink,
};
use enerj_apps::{no_check, App};
use enerj_bench::cli::Options;
use enerj_bench::{bench_report_path, render_table};
use enerj_core::{endorse, Approx};
use enerj_hw::config::{HwConfig, Level};

/// The synthetic benchmark body: generate a workload input (as every real
/// app does at the top of `run()`), fold a handful of approximate FP ops
/// over it, endorse once. Small enough that per-trial runner overhead —
/// spec materialization, claiming, slotting, aggregation, and input
/// regeneration where scratch is not reused — dominates wall-clock.
fn tiny_run() -> Output {
    let signal = enerj_apps::workload::complex_signal(512);
    let mut acc = Approx::new(0.0f64);
    for i in 0..16 {
        acc += Approx::new(signal.0[i]) * 0.5;
    }
    Output::Values(vec![endorse(acc)])
}

/// The synthetic app under test.
fn tiny_app() -> App {
    App {
        meta: AppMeta {
            name: "TinyDispatch",
            description: "synthetic campaign body: generated input, few approximate ops",
            metric: QosMetric::MeanEntryDiff,
            source: "",
        },
        run: tiny_run,
        check: no_check,
    }
}

/// The spec of trial `i`: Medium-level fault injection on the eval seed
/// stream, scored against the fault-free reference.
fn tiny_spec(app: &App, reference: &Arc<Output>, i: usize) -> TrialSpec {
    TrialSpec::scored(
        app,
        "perf",
        HwConfig::for_level(Level::Medium),
        FAULT_SEED_BASE ^ i as u64,
        Arc::clone(reference),
    )
}

/// Faithful replica of the pre-streaming campaign runner, for the "before"
/// column: the spec vector is fully materialized up front, every trial is
/// claimed with its own atomic increment, lands in its own pre-allocated
/// `Mutex<Option<_>>` slot, runs with a throwaway workspace (no scratch
/// reuse), and every result is retained until a post-hoc index-order
/// aggregation pass — exactly what `run_campaign_with` used to do.
mod slot {
    use super::*;
    use enerj_hw::energy::{EnergyBreakdown, EnergyQuantaBreakdown};
    use enerj_hw::quanta::EnergyQuanta;
    use enerj_hw::stats::Stats;
    use enerj_hw::FaultCounters;

    fn run_trial(index: usize, spec: &TrialSpec) -> TrialResult {
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // The old runner built a fresh workspace per trial.
            let m = harness::measure_with_telemetry(&spec.app, spec.cfg, spec.seed, false);
            let error = match &spec.reference {
                Some(reference) => output_error(spec.app.meta.metric, reference, &m.output),
                None => 0.0,
            };
            (m, error)
        }));
        let wall = start.elapsed();
        match outcome {
            Ok((m, error)) => TrialResult {
                index,
                app: spec.app.meta.name,
                label: spec.label.clone(),
                seed: spec.seed,
                error,
                output: spec.keep_output.then_some(m.output),
                stats: m.stats,
                energy: m.energy,
                energy_quanta: m.energy_quanta,
                wall,
                panic: None,
                fault_counts: m.fault_counts,
                events: m.events,
                attempts: 1,
                recovered_at_level: None,
                failure_causes: Vec::new(),
                recovery_energy_overhead: 0.0,
                recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
                scheduled_level: spec.scheduled_level.clone(),
            },
            Err(payload) => {
                let msg = enerj_core::panic_message(payload.as_ref());
                TrialResult {
                    index,
                    app: spec.app.meta.name,
                    label: spec.label.clone(),
                    seed: spec.seed,
                    error: 1.0,
                    output: None,
                    stats: Stats::new(),
                    energy: EnergyBreakdown { instructions: 1.0, sram: 1.0, dram: 1.0, total: 1.0 },
                    energy_quanta: EnergyQuantaBreakdown::ZERO,
                    wall,
                    failure_causes: vec![format!("panic: {msg}")],
                    panic: Some(msg),
                    fault_counts: FaultCounters::new(),
                    events: Vec::new(),
                    attempts: 1,
                    recovered_at_level: None,
                    recovery_energy_overhead: 0.0,
                    recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
                    scheduled_level: spec.scheduled_level.clone(),
                }
            }
        }
    }

    /// The replica runner. Returns the retained per-trial results.
    pub fn run_campaign(specs: &[TrialSpec], threads: usize) -> Vec<TrialResult> {
        let threads = threads.min(specs.len()).max(1);
        if threads <= 1 {
            return specs.iter().enumerate().map(|(i, s)| run_trial(i, s)).collect();
        }
        let slots: Vec<Mutex<Option<TrialResult>>> =
            specs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= specs.len() {
                        break;
                    }
                    let result = run_trial(i, &specs[i]);
                    *slots[i].lock().expect("unpoisoned slot") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("unpoisoned slot").expect("every slot was claimed")
            })
            .collect()
    }
}

/// The process's resident-set high-water mark (`VmHWM`, kB) from
/// `/proc/self/status`; 0 where the proc filesystem is unavailable.
fn vm_hwm_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Trials/sec with the denominator clamped away from zero, so a fast
/// `--quick` run can never serialize `inf`/`NaN`.
fn rate(trials: usize, wall: f64) -> f64 {
    trials as f64 / wall.max(1e-9)
}

/// Two trial results agree bit for bit on everything seeded (wall-clock
/// excluded, by definition).
fn trials_identical(a: &TrialResult, b: &TrialResult) -> bool {
    a.index == b.index
        && a.seed == b.seed
        && a.error.to_bits() == b.error.to_bits()
        && a.stats == b.stats
        && a.energy_quanta == b.energy_quanta
        && a.fault_counts == b.fault_counts
        && a.panic == b.panic
}

struct EngineRow {
    threads: usize,
    chunk: usize,
    trials: usize,
    slot_per_sec: f64,
    streamed_per_sec: f64,
    peak_buffered: usize,
    buffer_capacity: usize,
}

fn main() {
    let opts = Options::parse(std::env::args(), 0);
    let quick = opts.has_flag("--quick");
    let app = tiny_app();
    let reference = Arc::new(harness::reference(&app).output);

    // -- memory: stream N trials to NDJSON, first so VmHWM is the engine's.
    let mem_trials: usize = if quick { 50_000 } else { 1_000_000 };
    let mem_threads = if opts.threads == 0 { trials::default_threads() } else { opts.threads };
    let source = SpecFn::new(mem_trials, |i| tiny_spec(&app, &reference, i));
    let ndjson_path =
        std::env::temp_dir().join(format!("campaign_bench_{}.ndjson", std::process::id()));
    let file = std::fs::File::create(&ndjson_path).expect("create NDJSON temp file");
    let mut sink = NdjsonSink::new(std::io::BufWriter::new(file));
    let mem_opts =
        CampaignOptions { threads: mem_threads, chunk: opts.chunk, ..CampaignOptions::default() };
    let start = Instant::now();
    let mem = trials::run_campaign_streamed(&source, &mem_opts, &mut sink)
        .expect("NDJSON sink write failed");
    let mem_wall = start.elapsed().as_secs_f64();
    sink.into_inner().flush().expect("flush NDJSON");
    let ndjson_bytes = std::fs::metadata(&ndjson_path).map(|m| m.len()).unwrap_or(0);
    let _ = std::fs::remove_file(&ndjson_path);
    let mem_hwm_kb = vm_hwm_kb();

    // -- identity: slot replica vs in-memory engine vs streamed engine.
    let id_trials = 400;
    let id_specs: Vec<TrialSpec> = (0..id_trials).map(|i| tiny_spec(&app, &reference, i)).collect();
    let from_slots = slot::run_campaign(&id_specs, 2);
    let in_memory = trials::run_campaign_with(&id_specs, &CampaignOptions::with_threads(2));
    let id_source = SpecFn::new(id_trials, |i| tiny_spec(&app, &reference, i));
    let mut collected = VecSink::default();
    let streamed = trials::run_campaign_streamed(
        &id_source,
        &CampaignOptions { threads: 2, chunk: 16, ..CampaignOptions::default() },
        &mut collected,
    )
    .expect("the in-memory sink cannot fail");
    let identical = from_slots.len() == id_trials
        && in_memory.trials.len() == id_trials
        && collected.trials.len() == id_trials
        && from_slots
            .iter()
            .zip(&in_memory.trials)
            .zip(&collected.trials)
            .all(|((a, b), c)| trials_identical(a, b) && trials_identical(b, c))
        && in_memory.merged_stats == streamed.merged_stats;
    if !identical {
        eprintln!("campaign_bench: engines disagree — the streaming runner is broken");
        std::process::exit(1);
    }

    // -- engine grid: streamed trials/sec vs the slot replica per thread
    // count, across chunk sizes.
    let perf_trials: usize = if quick { 2_000 } else { 100_000 };
    let thread_counts: &[usize] = if opts.threads != 0 { &[opts.threads] } else { &[1, 2, 4] };
    let chunks: &[usize] = if opts.chunk != 0 { &[opts.chunk] } else { &[1, 16, 64] };
    let mut rows: Vec<EngineRow> = Vec::new();
    for &threads in thread_counts {
        let specs: Vec<TrialSpec> =
            (0..perf_trials).map(|i| tiny_spec(&app, &reference, i)).collect();
        let start = Instant::now();
        let retained = slot::run_campaign(&specs, threads);
        let slot_per_sec = rate(retained.len(), start.elapsed().as_secs_f64());
        drop(retained);
        drop(specs);
        for &chunk in chunks {
            let source = SpecFn::new(perf_trials, |i| tiny_spec(&app, &reference, i));
            let run_opts = CampaignOptions { threads, chunk, ..CampaignOptions::default() };
            let start = Instant::now();
            let summary = trials::run_campaign_streamed(&source, &run_opts, &mut NullSink)
                .expect("the null sink cannot fail");
            let streamed_per_sec = rate(summary.trials, start.elapsed().as_secs_f64());
            rows.push(EngineRow {
                threads,
                chunk: summary.chunk,
                trials: perf_trials,
                slot_per_sec,
                streamed_per_sec,
                peak_buffered: summary.peak_buffered,
                buffer_capacity: summary.buffer_capacity,
            });
        }
    }

    // -- render.
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.threads.to_string(),
                r.chunk.to_string(),
                format!("{:.0}", r.slot_per_sec),
                format!("{:.0}", r.streamed_per_sec),
                format!("{:.2}x", r.streamed_per_sec / r.slot_per_sec),
                format!("{}/{}", r.peak_buffered, r.buffer_capacity),
            ]
        })
        .collect();
    println!("Campaign engine throughput ({perf_trials} trials, synthetic generator-backed app)");
    println!();
    println!(
        "{}",
        render_table(
            &["threads", "chunk", "slot/s", "streamed/s", "speedup", "window"],
            &table_rows
        )
    );
    println!(
        "memory: {} trials -> NDJSON ({:.1} MB) at {:.0} trials/s on {} threads; \
         peak reorder window {}/{} results, VmHWM {:.1} MB",
        mem.trials,
        ndjson_bytes as f64 / 1e6,
        rate(mem.trials, mem_wall),
        mem.threads,
        mem.peak_buffered,
        mem.buffer_capacity,
        mem_hwm_kb as f64 / 1e3,
    );
    println!("identity: slot replica == in-memory engine == streamed engine ({id_trials} trials)");

    // -- JSON report.
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"enerj-campaignperf/1\",");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"identical\": {identical},");
    let _ = writeln!(json, "  \"memory\": {{");
    let _ = writeln!(json, "    \"trials\": {},", mem.trials);
    let _ = writeln!(json, "    \"threads\": {},", mem.threads);
    let _ = writeln!(json, "    \"chunk\": {},", mem.chunk);
    let _ = writeln!(json, "    \"trials_per_sec\": {:.3},", rate(mem.trials, mem_wall));
    let _ = writeln!(json, "    \"ndjson_bytes\": {ndjson_bytes},");
    let _ = writeln!(json, "    \"peak_buffered\": {},", mem.peak_buffered);
    let _ = writeln!(json, "    \"buffer_capacity\": {},", mem.buffer_capacity);
    let _ = writeln!(json, "    \"vm_hwm_kb\": {mem_hwm_kb}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"engine\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"threads\": {}, \"chunk\": {}, \"trials\": {}, \
             \"slot_trials_per_sec\": {:.3}, \"streamed_trials_per_sec\": {:.3}, \
             \"speedup\": {:.4}, \"peak_buffered\": {}, \"buffer_capacity\": {}}}{comma}",
            r.threads,
            r.chunk,
            r.trials,
            r.slot_per_sec,
            r.streamed_per_sec,
            r.streamed_per_sec / r.slot_per_sec,
            r.peak_buffered,
            r.buffer_capacity,
        );
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");
    let path = bench_report_path("campaignperf");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("campaign perf report -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
    if opts.json {
        println!("{json}");
    }
}
