//! Regenerates **Table 1**: EnerJ's language extensions, their purposes,
//! and — new for this reproduction — where each construct lives in the two
//! renderings (the FEnerJ language and the embedded Rust API). Static
//! content (no trials); `--json` emits one row object per construct.

use enerj_bench::cli::Options;
use enerj_bench::render_table;

fn main() {
    let opts = Options::parse(std::env::args(), 0);
    let rows = vec![
        vec![
            "@Approx, @Precise, @Top".to_owned(),
            "Type annotations: qualify any type (default @Precise)".to_owned(),
            "2.1".to_owned(),
            "`approx`/`precise`/`top` qualifiers".to_owned(),
            "Approx<T> vs plain T".to_owned(),
        ],
        vec![
            "endorse(e)".to_owned(),
            "Cast an approximate value to its precise equivalent".to_owned(),
            "2.2".to_owned(),
            "endorse(e)".to_owned(),
            "endorse / endorse_ctx".to_owned(),
        ],
        vec![
            "@Approximable".to_owned(),
            "Class may have precise and approximate instances".to_owned(),
            "2.5".to_owned(),
            "every class (new approx C())".to_owned(),
            "struct C<M: Mode>".to_owned(),
        ],
        vec![
            "@Context".to_owned(),
            "Precision follows the enclosing object's qualifier".to_owned(),
            "2.5.1".to_owned(),
            "`context` qualifier".to_owned(),
            "Ctx<T, M>".to_owned(),
        ],
        vec![
            "_APPROX methods".to_owned(),
            "Overload invoked when the receiver is approximate".to_owned(),
            "2.5.2".to_owned(),
            "`T m() approx { ... }`".to_owned(),
            "impl Trait for C<ApproxMode>".to_owned(),
        ],
        vec![
            "approximate arrays".to_owned(),
            "Approx elements, precise length and indices".to_owned(),
            "2.6".to_owned(),
            "`approx float[]`, e[i]".to_owned(),
            "ApproxVec<T>".to_owned(),
        ],
    ];
    if opts.json {
        for row in &rows {
            println!(
                "{{\"construct\":{:?},\"purpose\":{:?},\"paper\":{:?},\"fenerj\":{:?},\"rust\":{:?}}}",
                row[0], row[1], row[2], row[3], row[4]
            );
        }
        return;
    }
    println!("Table 1: EnerJ's language extensions and their renderings here");
    println!();
    println!(
        "{}",
        render_table(
            &["Construct", "Purpose", "Paper", "FEnerJ (enerj-lang)", "Rust API (enerj-core)"],
            &rows
        )
    );
}
