//! Regenerates **Figure 5**: output error for the three approximation
//! levels applied together; each bar is the mean over N fault-injection
//! runs (the paper uses 20; override with `--runs N`).

use enerj_apps::{all_apps, harness};
use enerj_bench::{err3, render_table, Options};
use enerj_hw::config::Level;

fn main() {
    let opts = Options::parse(std::env::args(), 20);
    let mut rows = Vec::new();
    for app in all_apps() {
        let reference = harness::reference(&app).output;
        let mut row = vec![app.meta.name.to_owned()];
        for level in Level::ALL {
            let err = harness::mean_output_error_vs(&app, &reference, level, opts.runs);
            row.push(err3(err));
            if opts.json {
                println!(
                    "{{\"app\":\"{}\",\"level\":\"{level}\",\"error\":{err:.4},\"runs\":{}}}",
                    app.meta.name, opts.runs
                );
            }
        }
        rows.push(row);
    }
    if !opts.json {
        println!(
            "Figure 5: output error at the three approximation levels (mean of {} runs)",
            opts.runs
        );
        println!();
        println!(
            "{}",
            render_table(&["Application", "Mild", "Medium", "Aggressive"], &rows)
        );
        println!("0 = identical to precise output, 1 = meaningless output.");
    }
}
