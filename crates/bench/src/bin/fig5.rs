//! Regenerates **Figure 5**: output error for the three approximation
//! levels applied together; each bar is the mean over N fault-injection
//! runs (the paper uses 20; override with `--runs N`).
//!
//! All `apps x levels x runs` trials go through one parallel,
//! crash-isolated campaign ([`enerj_apps::trials`]); the full per-trial
//! record is written to `results/BENCH_fig5.json`.

use enerj_apps::all_apps;
use enerj_apps::trials::run_level_campaign_with;
use enerj_bench::cli::Options;
use enerj_bench::{err3, finish_campaign, render_table};
use enerj_hw::config::Level;

fn main() {
    let opts = Options::parse(std::env::args(), 20);
    let apps = all_apps();
    let report = run_level_campaign_with(&apps, &Level::ALL, opts.runs, &opts.campaign_options());

    let mut rows = Vec::new();
    for app in &apps {
        let mut row = vec![app.meta.name.to_owned()];
        for level in Level::ALL {
            let err = report.mean_error_for(app.meta.name, &level.to_string());
            row.push(err3(err));
            if opts.json {
                println!(
                    "{{\"app\":\"{}\",\"level\":\"{level}\",\"error\":{err:.4},\"runs\":{}}}",
                    app.meta.name, opts.runs
                );
            }
        }
        rows.push(row);
    }
    if !opts.json {
        println!(
            "Figure 5: output error at the three approximation levels (mean of {} runs)",
            opts.runs
        );
        println!();
        println!("{}", render_table(&["Application", "Mild", "Medium", "Aggressive"], &rows));
        println!("0 = identical to precise output, 1 = meaningless output.");
        if report.panic_count() > 0 {
            println!(
                "{} fault-injected runs crashed and were scored as worst-case (error 1).",
                report.panic_count()
            );
        }
    }
    finish_campaign("fig5", &report, &opts);
}
