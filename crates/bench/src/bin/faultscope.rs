//! `faultscope` — per-app, per-unit fault breakdowns from telemetry
//! artifacts.
//!
//! ```text
//! faultscope <results/BENCH_*.json | faults.ndjson> [--label L] [--bits] [--causes]
//! ```
//!
//! Reads either a campaign report (`enerj-campaign/2` through `/4` JSON,
//! aggregating each trial's `fault_counts`) or an NDJSON fault log
//! (counting events), auto-detected, and prints one row per application
//! with a column per fault kind. Cells are injection counts with each
//! unit's share of the app's total; `--bits` switches to flipped-bit
//! totals — the honest "where did my error come from" measure. `--label L`
//! restricts to one campaign label (a level or strategy name).
//!
//! `--causes` switches to the recovery view (`/3`+ reports): one row per
//! app × label with the trial count, how many trials needed recovery, how
//! many stayed degraded, the failure-cause mix (panics, watchdog
//! op-budget trips, failed output checks, QoS threshold breaches), and —
//! for `/4` reports — the exact retry energy overhead in integer quanta.
//!
//! This is the observability counterpart to `fig5`: instead of "FFT
//! degrades at Medium", it answers "FFT's faults are 90% SRAM read
//! upsets" — or, with `--causes`, "FFT's retries are mostly QoS breaches".

use std::collections::BTreeMap;
use std::process::ExitCode;

use enerj_bench::json::Json;
use enerj_bench::render_table;
use enerj_hw::trace::FaultKind;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("faultscope: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: faultscope <BENCH_report.json | fault_log.ndjson> [--label L] [--bits] [--causes]"
        .to_owned()
}

/// injections and bits flipped, per (app, kind).
type Breakdown = BTreeMap<String, [(u64, u64); FaultKind::ALL.len()]>;

fn run(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut label = None;
    let mut bits = false;
    let mut causes = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => label = Some(it.next().ok_or("--label needs a value")?.clone()),
            "--bits" => bits = true,
            "--causes" => causes = true,
            other if !other.starts_with("--") => path = Some(other.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;

    if causes {
        if !looks_like_report(&text) {
            return Err("--causes needs a campaign report (fault logs carry no \
                        recovery telemetry)"
                .to_owned());
        }
        return print_causes(&text, label.as_deref());
    }

    let (breakdown, source) = if looks_like_report(&text) {
        (from_report(&text, label.as_deref())?, "campaign report")
    } else {
        (from_ndjson(&text, label.as_deref())?, "fault log")
    };

    if breakdown.is_empty() {
        println!(
            "no faults recorded{}",
            match &label {
                Some(l) => format!(" for label `{l}`"),
                None => String::new(),
            }
        );
        return Ok(());
    }

    let measure = if bits { "bits flipped" } else { "injections" };
    let mut headers = vec!["Application"];
    let kind_names: Vec<String> = FaultKind::ALL.iter().map(|k| k.to_string()).collect();
    headers.extend(kind_names.iter().map(String::as_str));
    headers.push("total");

    let mut rows = Vec::new();
    for (app, counts) in &breakdown {
        let total: u64 = counts.iter().map(|&(inj, b)| if bits { b } else { inj }).sum();
        let mut row = vec![app.clone()];
        for &(inj, b) in counts {
            let n = if bits { b } else { inj };
            if n == 0 {
                row.push("-".to_owned());
            } else {
                row.push(format!("{n} ({:.0}%)", 100.0 * n as f64 / total.max(1) as f64));
            }
        }
        row.push(total.to_string());
        rows.push(row);
    }
    println!(
        "Fault breakdown by unit ({measure}, from {source}{})",
        match &label {
            Some(l) => format!(", label `{l}`"),
            None => String::new(),
        }
    );
    println!();
    println!("{}", render_table(&headers, &rows));
    Ok(())
}

/// A campaign report is a single JSON object with a `schema` field; an
/// NDJSON log is one object per line with no `schema`.
fn looks_like_report(text: &str) -> bool {
    text.trim_start().starts_with('{')
        && Json::parse(text.trim())
            .ok()
            .is_some_and(|v| v.get("schema").and_then(Json::as_str).is_some())
}

fn from_report(text: &str, label: Option<&str>) -> Result<Breakdown, String> {
    let report = Json::parse(text.trim()).map_err(|e| format!("report: {e}"))?;
    let schema = report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema`")?;
    if !schema.starts_with("enerj-campaign/") {
        return Err(format!("unsupported schema `{schema}`"));
    }
    if schema == "enerj-campaign/1" {
        return Err("schema enerj-campaign/1 predates fault telemetry; re-run the bench \
                    binary to produce an enerj-campaign/2 report"
            .to_owned());
    }
    let trials = report.get("trials").and_then(Json::as_array).ok_or("report: missing `trials`")?;
    let mut breakdown = Breakdown::new();
    for trial in trials {
        let app = trial.get("app").and_then(Json::as_str).ok_or("trial: missing `app`")?;
        if let Some(want) = label {
            if trial.get("label").and_then(Json::as_str) != Some(want) {
                continue;
            }
        }
        let counts =
            trial.get("fault_counts").ok_or("trial: missing `fault_counts` (schema /2)")?;
        let entry = breakdown.entry(app.to_owned()).or_default();
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            if let Some(kc) = counts.get(&kind.to_string()) {
                let inj = kc.get("injections").and_then(Json::as_f64).unwrap_or(0.0);
                let b = kc.get("bits_flipped").and_then(Json::as_f64).unwrap_or(0.0);
                entry[i].0 += inj as u64;
                entry[i].1 += b as u64;
            }
        }
    }
    Ok(breakdown)
}

/// The stable failure-cause categories `enerj-campaign/3`+ reports use as
/// `failure_causes` prefixes (see `enerj_apps::recovery::FailureCause`).
const CAUSE_CATEGORIES: [&str; 4] = ["panic", "op-budget", "check", "qos"];

/// Prints the recovery view: per app × label, the trial count, recovery
/// outcomes, the failure-cause mix, and the exact retry energy overhead
/// (integer quanta, `enerj-campaign/4`).
fn print_causes(text: &str, label: Option<&str>) -> Result<(), String> {
    let report = Json::parse(text.trim()).map_err(|e| format!("report: {e}"))?;
    let schema = report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema`")?;
    if !["enerj-campaign/3", "enerj-campaign/4"].contains(&schema) {
        return Err(format!(
            "schema `{schema}` carries no recovery telemetry; re-run the bench \
             binary to produce an enerj-campaign/4 report"
        ));
    }
    let trials = report.get("trials").and_then(Json::as_array).ok_or("report: missing `trials`")?;
    // (app, label) -> [trials, recovered, degraded, per-category counts...].
    let mut rows: BTreeMap<(String, String), [u64; 3 + CAUSE_CATEGORIES.len()]> = BTreeMap::new();
    // (app, label) -> summed retry overhead quanta (absent in /3 reports).
    let mut overhead_quanta: BTreeMap<(String, String), u128> = BTreeMap::new();
    for trial in trials {
        let app = trial.get("app").and_then(Json::as_str).ok_or("trial: missing `app`")?;
        let trial_label =
            trial.get("label").and_then(Json::as_str).ok_or("trial: missing `label`")?;
        if let Some(want) = label {
            if trial_label != want {
                continue;
            }
        }
        let entry = rows.entry((app.to_owned(), trial_label.to_owned())).or_default();
        entry[0] += 1;
        if trial.get("recovered_at_level").and_then(Json::as_str).is_some() {
            entry[1] += 1;
        }
        let causes = trial
            .get("failure_causes")
            .and_then(Json::as_array)
            .ok_or("trial: missing `failure_causes`")?;
        // Unrecovered: final attempt also failed (causes cover every attempt).
        let attempts = trial.get("attempts").and_then(Json::as_f64).unwrap_or(1.0);
        if !causes.is_empty() && causes.len() as f64 >= attempts {
            entry[2] += 1;
        }
        for cause in causes {
            let cause = cause.as_str().unwrap_or("");
            for (i, cat) in CAUSE_CATEGORIES.iter().enumerate() {
                if cause.starts_with(&format!("{cat}:")) {
                    entry[3 + i] += 1;
                }
            }
        }
        let q = trial.get("recovery_energy_overhead_quanta").and_then(Json::as_f64).unwrap_or(0.0);
        *overhead_quanta.entry((app.to_owned(), trial_label.to_owned())).or_default() += q as u128;
    }
    if rows.is_empty() {
        println!(
            "no trials{}",
            match &label {
                Some(l) => format!(" for label `{l}`"),
                None => String::new(),
            }
        );
        return Ok(());
    }
    let mut headers = vec!["Application", "Label", "trials", "recovered", "degraded"];
    headers.extend(CAUSE_CATEGORIES);
    headers.push("overhead quanta");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|((app, lbl), counts)| {
            let mut row = vec![app.clone(), lbl.clone()];
            row.extend(counts.iter().map(|n| if *n == 0 { "-".to_owned() } else { n.to_string() }));
            // `trials` reads better as a number even when zero can't occur.
            row[2] = counts[0].to_string();
            let q = overhead_quanta.get(&(app.clone(), lbl.clone())).copied().unwrap_or(0);
            row.push(if q == 0 { "-".to_owned() } else { q.to_string() });
            row
        })
        .collect();
    println!("Recovery outcomes and failure causes by app and label");
    println!();
    println!("{}", render_table(&headers, &table_rows));
    Ok(())
}

fn from_ndjson(text: &str, label: Option<&str>) -> Result<Breakdown, String> {
    let mut breakdown = Breakdown::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let event = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let app = event
            .get("app")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing `app`", lineno + 1))?;
        if let Some(want) = label {
            if event.get("label").and_then(Json::as_str) != Some(want) {
                continue;
            }
        }
        let unit = event
            .get("unit")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing `unit`", lineno + 1))?;
        let kind = FaultKind::from_name(unit)
            .ok_or_else(|| format!("line {}: unknown unit `{unit}`", lineno + 1))?;
        let b = event.get("bits_flipped").and_then(Json::as_f64).unwrap_or(0.0);
        let entry = breakdown.entry(app.to_owned()).or_default();
        entry[kind.index()].0 += 1;
        entry[kind.index()].1 += b as u64;
    }
    Ok(breakdown)
}
