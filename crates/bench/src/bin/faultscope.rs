//! `faultscope` — per-app, per-unit fault breakdowns from telemetry
//! artifacts.
//!
//! ```text
//! faultscope <results/BENCH_*.json | faults.ndjson> [--label L] [--bits] [--causes]
//! ```
//!
//! Reads either a campaign report (`enerj-campaign/2` through `/5` JSON,
//! aggregating each trial's `fault_counts`) or an NDJSON fault log
//! (counting events), auto-detected, and prints one row per application
//! with a column per fault kind. Cells are injection counts with each
//! unit's share of the app's total; `--bits` switches to flipped-bit
//! totals — the honest "where did my error come from" measure. `--label L`
//! restricts to one campaign label (a level or strategy name).
//!
//! `--causes` switches to the recovery view (`/3`+ reports): one row per
//! app × label with the trial count, how many trials needed recovery, how
//! many stayed degraded, the failure-cause mix (panics, watchdog
//! op-budget trips, failed output checks, QoS threshold breaches), and —
//! for `/4` reports — the exact retry energy overhead in integer quanta.
//!
//! This is the observability counterpart to `fig5`: instead of "FFT
//! degrades at Medium", it answers "FFT's faults are 90% SRAM read
//! upsets" — or, with `--causes`, "FFT's retries are mostly QoS breaches".

use std::collections::BTreeMap;
use std::process::ExitCode;

use enerj_bench::json::Json;
use enerj_bench::render_table;
use enerj_hw::trace::FaultKind;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("faultscope: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: faultscope <BENCH_report.json | fault_log.ndjson> [--label L] [--bits] [--causes]"
        .to_owned()
}

/// injections and bits flipped, per (app, kind).
type Breakdown = BTreeMap<String, [(u64, u64); FaultKind::ALL.len()]>;

fn run(args: &[String]) -> Result<(), String> {
    let mut path = None;
    let mut label = None;
    let mut bits = false;
    let mut causes = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--label" => label = Some(it.next().ok_or("--label needs a value")?.clone()),
            "--bits" => bits = true,
            "--causes" => causes = true,
            other if !other.starts_with("--") => path = Some(other.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    let path = path.ok_or_else(usage)?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;

    if causes {
        if !looks_like_report(&text) {
            return Err("--causes needs a campaign report (fault logs carry no \
                        recovery telemetry)"
                .to_owned());
        }
        return print_causes(&text, label.as_deref());
    }

    let (breakdown, source) = if looks_like_report(&text) {
        (from_report(&text, label.as_deref())?, "campaign report")
    } else {
        (from_ndjson(&text, label.as_deref())?, "fault log")
    };

    if breakdown.is_empty() {
        println!(
            "no faults recorded{}",
            match &label {
                Some(l) => format!(" for label `{l}`"),
                None => String::new(),
            }
        );
        return Ok(());
    }

    let measure = if bits { "bits flipped" } else { "injections" };
    let mut headers = vec!["Application"];
    let kind_names: Vec<String> = FaultKind::ALL.iter().map(|k| k.to_string()).collect();
    headers.extend(kind_names.iter().map(String::as_str));
    headers.push("total");

    let mut rows = Vec::new();
    for (app, counts) in &breakdown {
        let total: u64 = counts.iter().map(|&(inj, b)| if bits { b } else { inj }).sum();
        let mut row = vec![app.clone()];
        for &(inj, b) in counts {
            let n = if bits { b } else { inj };
            if n == 0 {
                row.push("-".to_owned());
            } else {
                row.push(format!("{n} ({:.0}%)", 100.0 * n as f64 / total.max(1) as f64));
            }
        }
        row.push(total.to_string());
        rows.push(row);
    }
    println!(
        "Fault breakdown by unit ({measure}, from {source}{})",
        match &label {
            Some(l) => format!(", label `{l}`"),
            None => String::new(),
        }
    );
    println!();
    println!("{}", render_table(&headers, &rows));
    Ok(())
}

/// A campaign report is a single JSON object with a `schema` field; an
/// NDJSON log is one object per line with no `schema`.
fn looks_like_report(text: &str) -> bool {
    text.trim_start().starts_with('{')
        && Json::parse(text.trim())
            .ok()
            .is_some_and(|v| v.get("schema").and_then(Json::as_str).is_some())
}

fn from_report(text: &str, label: Option<&str>) -> Result<Breakdown, String> {
    let report = Json::parse(text.trim()).map_err(|e| format!("report: {e}"))?;
    let schema = report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema`")?;
    if !schema.starts_with("enerj-campaign/") {
        return Err(format!("unsupported schema `{schema}`"));
    }
    if schema == "enerj-campaign/1" {
        return Err("schema enerj-campaign/1 predates fault telemetry; re-run the bench \
                    binary to produce an enerj-campaign/2 report"
            .to_owned());
    }
    let trials = report.get("trials").and_then(Json::as_array).ok_or("report: missing `trials`")?;
    let mut breakdown = Breakdown::new();
    for trial in trials {
        let app = trial.get("app").and_then(Json::as_str).ok_or("trial: missing `app`")?;
        if let Some(want) = label {
            if trial.get("label").and_then(Json::as_str) != Some(want) {
                continue;
            }
        }
        let counts =
            trial.get("fault_counts").ok_or("trial: missing `fault_counts` (schema /2)")?;
        let entry = breakdown.entry(app.to_owned()).or_default();
        for (i, kind) in FaultKind::ALL.iter().enumerate() {
            if let Some(kc) = counts.get(&kind.to_string()) {
                let inj = kc.get("injections").and_then(Json::as_u128).unwrap_or(0);
                let b = kc.get("bits_flipped").and_then(Json::as_u128).unwrap_or(0);
                entry[i].0 += u64::try_from(inj).unwrap_or(u64::MAX);
                entry[i].1 += u64::try_from(b).unwrap_or(u64::MAX);
            }
        }
    }
    Ok(breakdown)
}

/// The stable failure-cause categories `enerj-campaign/3`+ reports use as
/// `failure_causes` prefixes (see `enerj_apps::recovery::FailureCause`).
const CAUSE_CATEGORIES: [&str; 4] = ["panic", "op-budget", "check", "qos"];

/// Per app × label: `[trials, recovered, degraded, per-category counts...]`.
type CauseRows = BTreeMap<(String, String), [u64; 3 + CAUSE_CATEGORIES.len()]>;

/// Per app × label: summed retry overhead quanta (absent in `/3` reports).
type OverheadQuanta = BTreeMap<(String, String), u128>;

/// Accumulates the recovery view from a parsed `/3`+ report.
///
/// Outcomes come from the authoritative recorded fields, not inference:
/// `recovered_at_level` marks a trial recovered, and a trial is *degraded*
/// exactly when it failed (non-empty `failure_causes`) and no rung's
/// output was accepted (`recovered_at_level` null). The attempt ledger is
/// cross-checked — every failed attempt records one cause, so a recovered
/// trial must carry `attempts - 1` causes and a degraded one exactly
/// `attempts` — and any mismatch is a validation error rather than a
/// silently misclassified row. Overhead quanta are summed as exact
/// integers ([`Json::as_u128`]), never through f64.
fn causes_rows(report: &Json, label: Option<&str>) -> Result<(CauseRows, OverheadQuanta), String> {
    let trials = report.get("trials").and_then(Json::as_array).ok_or("report: missing `trials`")?;
    let mut rows = CauseRows::new();
    let mut overhead_quanta = OverheadQuanta::new();
    for (i, trial) in trials.iter().enumerate() {
        let app = trial.get("app").and_then(Json::as_str).ok_or("trial: missing `app`")?;
        let trial_label =
            trial.get("label").and_then(Json::as_str).ok_or("trial: missing `label`")?;
        if let Some(want) = label {
            if trial_label != want {
                continue;
            }
        }
        let causes = trial
            .get("failure_causes")
            .and_then(Json::as_array)
            .ok_or("trial: missing `failure_causes`")?;
        let attempts = trial
            .get("attempts")
            .and_then(Json::as_u128)
            .ok_or_else(|| format!("trial {i}: `attempts` must be a non-negative integer"))?;
        let recovered = trial.get("recovered_at_level").and_then(Json::as_str).is_some();
        let degraded = !recovered && !causes.is_empty();
        // Each failed attempt records exactly one cause: recovered trials
        // spent their last attempt on the accepted output, degraded ones
        // failed every attempt.
        let expect = causes.len() as u128 + u128::from(recovered);
        if (recovered || degraded) && expect != attempts {
            return Err(format!(
                "trial {i} ({app}/{trial_label}): {} failure causes and \
                 recovered_at_level {} are inconsistent with {attempts} attempts",
                causes.len(),
                if recovered { "set" } else { "null" },
            ));
        }
        let entry = rows.entry((app.to_owned(), trial_label.to_owned())).or_default();
        entry[0] += 1;
        entry[1] += u64::from(recovered);
        entry[2] += u64::from(degraded);
        for cause in causes {
            let cause = cause.as_str().unwrap_or("");
            for (j, cat) in CAUSE_CATEGORIES.iter().enumerate() {
                if cause.starts_with(&format!("{cat}:")) {
                    entry[3 + j] += 1;
                }
            }
        }
        let q = match trial.get("recovery_energy_overhead_quanta") {
            None => 0, // `/3` reports predate the exact-quanta ledger.
            Some(v) => v.as_u128().ok_or_else(|| {
                format!(
                    "trial {i}: `recovery_energy_overhead_quanta` must be a \
                     non-negative integer ({v:?})"
                )
            })?,
        };
        *overhead_quanta.entry((app.to_owned(), trial_label.to_owned())).or_default() += q;
    }
    Ok((rows, overhead_quanta))
}

/// Prints the recovery view: per app × label, the trial count, recovery
/// outcomes, the failure-cause mix, and the exact retry energy overhead
/// (integer quanta, `enerj-campaign/4`+).
fn print_causes(text: &str, label: Option<&str>) -> Result<(), String> {
    let report = Json::parse(text.trim()).map_err(|e| format!("report: {e}"))?;
    let schema = report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema`")?;
    if !["enerj-campaign/3", "enerj-campaign/4", "enerj-campaign/5"].contains(&schema) {
        return Err(format!(
            "schema `{schema}` carries no recovery telemetry; re-run the bench \
             binary to produce an enerj-campaign/5 report"
        ));
    }
    let (rows, overhead_quanta) = causes_rows(&report, label)?;
    if rows.is_empty() {
        println!(
            "no trials{}",
            match &label {
                Some(l) => format!(" for label `{l}`"),
                None => String::new(),
            }
        );
        return Ok(());
    }
    let mut headers = vec!["Application", "Label", "trials", "recovered", "degraded"];
    headers.extend(CAUSE_CATEGORIES);
    headers.push("overhead quanta");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|((app, lbl), counts)| {
            let mut row = vec![app.clone(), lbl.clone()];
            row.extend(counts.iter().map(|n| if *n == 0 { "-".to_owned() } else { n.to_string() }));
            // `trials` reads better as a number even when zero can't occur.
            row[2] = counts[0].to_string();
            let q = overhead_quanta.get(&(app.clone(), lbl.clone())).copied().unwrap_or(0);
            row.push(if q == 0 { "-".to_owned() } else { q.to_string() });
            row
        })
        .collect();
    println!("Recovery outcomes and failure causes by app and label");
    println!();
    println!("{}", render_table(&headers, &table_rows));
    Ok(())
}

fn from_ndjson(text: &str, label: Option<&str>) -> Result<Breakdown, String> {
    let mut breakdown = Breakdown::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let event = Json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let app = event
            .get("app")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing `app`", lineno + 1))?;
        if let Some(want) = label {
            if event.get("label").and_then(Json::as_str) != Some(want) {
                continue;
            }
        }
        let unit = event
            .get("unit")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing `unit`", lineno + 1))?;
        let kind = FaultKind::from_name(unit)
            .ok_or_else(|| format!("line {}: unknown unit `{unit}`", lineno + 1))?;
        let b = event.get("bits_flipped").and_then(Json::as_u128).unwrap_or(0);
        let entry = breakdown.entry(app.to_owned()).or_default();
        entry[kind.index()].0 += 1;
        entry[kind.index()].1 += u64::try_from(b).unwrap_or(u64::MAX);
    }
    Ok(breakdown)
}

#[cfg(test)]
mod tests {
    use super::{causes_rows, Json};

    /// A minimal `/4` trial list exercising every recovery outcome: a
    /// clean first-try pass, a trial recovered at a rung, and a degraded
    /// trial whose final attempt also failed.
    fn golden_report() -> Json {
        Json::parse(
            r#"{"schema":"enerj-campaign/4","trials":[
              {"app":"FFT","label":"Mild","attempts":1,"recovered_at_level":null,
               "failure_causes":[],"recovery_energy_overhead_quanta":0},
              {"app":"FFT","label":"Mild","attempts":2,"recovered_at_level":"Precise",
               "failure_causes":["qos: error 0.5 > threshold 0.1"],
               "recovery_energy_overhead_quanta":9007199254740993},
              {"app":"FFT","label":"Mild","attempts":2,"recovered_at_level":null,
               "failure_causes":["panic: index out of bounds","check: non-finite"],
               "recovery_energy_overhead_quanta":1}
            ]}"#,
        )
        .unwrap()
    }

    #[test]
    fn outcomes_come_from_recorded_fields_not_cause_counts() {
        let (rows, overhead) = causes_rows(&golden_report(), None).unwrap();
        let key = ("FFT".to_owned(), "Mild".to_owned());
        let counts = rows[&key];
        assert_eq!(counts[0], 3, "trials");
        assert_eq!(counts[1], 1, "recovered: only the trial with recovered_at_level set");
        assert_eq!(counts[2], 1, "degraded: failed causes with recovered_at_level null");
        // Category mix: one panic, one check, one qos.
        assert_eq!(&counts[3..], &[1, 0, 1, 1]);
        // Overhead sums exactly, beyond f64 precision (2^53 + 1 survives).
        assert_eq!(overhead[&key], 9_007_199_254_740_993 + 1);
    }

    #[test]
    fn inconsistent_attempt_ledger_is_a_validation_error() {
        // A recovered trial must carry attempts - 1 causes; two causes in
        // two attempts means the final attempt failed, which contradicts
        // recovered_at_level being set.
        let bad = Json::parse(
            r#"{"schema":"enerj-campaign/4","trials":[
              {"app":"FFT","label":"Mild","attempts":2,"recovered_at_level":"Precise",
               "failure_causes":["qos: a","qos: b"],
               "recovery_energy_overhead_quanta":0}
            ]}"#,
        )
        .unwrap();
        let err = causes_rows(&bad, None).unwrap_err();
        assert!(err.contains("inconsistent with 2 attempts"), "{err}");
        // The converse: a degraded trial (no recovery) claiming more
        // attempts than it has causes lost an attempt's record somewhere.
        let bad = Json::parse(
            r#"{"schema":"enerj-campaign/4","trials":[
              {"app":"FFT","label":"Mild","attempts":3,"recovered_at_level":null,
               "failure_causes":["qos: a","qos: b"],
               "recovery_energy_overhead_quanta":0}
            ]}"#,
        )
        .unwrap();
        assert!(causes_rows(&bad, None).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn fractional_overhead_quanta_are_rejected() {
        let bad = Json::parse(
            r#"{"schema":"enerj-campaign/4","trials":[
              {"app":"FFT","label":"Mild","attempts":1,"recovered_at_level":null,
               "failure_causes":[],"recovery_energy_overhead_quanta":1.5}
            ]}"#,
        )
        .unwrap();
        let err = causes_rows(&bad, None).unwrap_err();
        assert!(err.contains("non-negative integer"), "{err}");
    }
}
