//! The section 6.2 extension experiment: per-application offline QoS
//! tuning. For each benchmark and each error budget, profile the three
//! Table 2 levels and report the most aggressive admissible configuration
//! and the energy it buys — quantifying the paper's remark that the
//! substrate "could benefit from tuning to the characteristics of each
//! application". Profiling runs go through the parallel campaign runner
//! (`--threads N` to bound workers).

use enerj_apps::all_apps;
use enerj_apps::tuner::tune_campaign;
use enerj_bench::cli::Options;
use enerj_bench::render_table;
use enerj_hw::FaultCounters;

fn main() {
    let opts = Options::parse(std::env::args(), 5);
    let budgets = [0.01, 0.05, 0.10];
    let mut rows = Vec::new();
    let mut fault_totals = FaultCounters::new();
    let mut fault_log = String::new();
    for app in all_apps() {
        let mut row = vec![app.meta.name.to_owned()];
        for &budget in &budgets {
            let (r, profile) = tune_campaign(&app, budget, opts.runs, &opts.campaign_options());
            fault_totals.merge(&profile.fault_totals());
            if opts.fault_log.is_some() {
                fault_log.push_str(&profile.fault_log_ndjson());
            }
            let label = match r.chosen {
                None => "precise".to_owned(),
                Some(level) => format!("{level}"),
            };
            row.push(format!("{label} ({:.0}%)", 100.0 * (1.0 - r.chosen_energy())));
            if opts.json {
                println!(
                    "{{\"app\":\"{}\",\"budget\":{budget},\"chosen\":\"{label}\",\"energy\":{:.4},\
                     \"profiled_errors\":[{:.4},{:.4},{:.4}]}}",
                    app.meta.name,
                    r.chosen_energy(),
                    r.errors[0],
                    r.errors[1],
                    r.errors[2]
                );
            }
        }
        rows.push(row);
    }
    if opts.trace {
        eprintln!("fault totals (profiling campaigns): {fault_totals}");
    }
    if let Some(path) = &opts.fault_log {
        match std::fs::write(path, &fault_log) {
            Ok(()) => eprintln!("fault log: {} line(s) -> {path}", fault_log.lines().count()),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    if !opts.json {
        println!("Offline QoS tuning (section 6.2 extension): most aggressive level within budget");
        println!("(cell = chosen level, energy saved); {} profiling runs per level", opts.runs);
        println!();
        println!(
            "{}",
            render_table(&["Application", "budget 1%", "budget 5%", "budget 10%"], &rows)
        );
        println!("Robust apps (MonteCarlo, ImageJ) earn Medium/Aggressive even at tight");
        println!("budgets; fragile apps (FFT, SOR) are pinned to Mild — the per-app");
        println!("variation the paper calls out.");
    }
}
