//! Regenerates **Table 2**: the approximation strategies simulated in the
//! evaluation, with their error probabilities and energy savings at the
//! Mild / Medium / Aggressive levels. Static content (no trials); `--json`
//! emits one row object per strategy.

use enerj_bench::cli::Options;
use enerj_bench::render_table;
use enerj_hw::config::Level;

fn main() {
    let opts = Options::parse(std::env::args(), 0);
    let [mild, medium, aggressive] =
        [Level::Mild.params(), Level::Medium.params(), Level::Aggressive.params()];

    let rows = vec![
        vec![
            "DRAM refresh: per-second bit flip probability".to_owned(),
            format!("{:.0e}", mild.dram_flip_per_second),
            format!("{:.0e}", medium.dram_flip_per_second),
            format!("{:.0e}", aggressive.dram_flip_per_second),
        ],
        vec![
            "Memory power saved".to_owned(),
            format!("{:.0}%", mild.dram_power_saved * 100.0),
            format!("{:.0}%", medium.dram_power_saved * 100.0),
            format!("{:.0}%", aggressive.dram_power_saved * 100.0),
        ],
        vec![
            "SRAM read upset probability".to_owned(),
            format!("10^{:.1}", mild.sram_read_upset_prob.log10()),
            format!("10^{:.1}", medium.sram_read_upset_prob.log10()),
            format!("10^{:.1}", aggressive.sram_read_upset_prob.log10()),
        ],
        vec![
            "SRAM write failure probability".to_owned(),
            format!("10^{:.2}", mild.sram_write_failure_prob.log10()),
            format!("10^{:.2}", medium.sram_write_failure_prob.log10()),
            format!("10^{:.2}", aggressive.sram_write_failure_prob.log10()),
        ],
        vec![
            "Supply power saved".to_owned(),
            format!("{:.0}%", mild.sram_power_saved * 100.0),
            format!("{:.0}%", medium.sram_power_saved * 100.0),
            format!("{:.0}%", aggressive.sram_power_saved * 100.0),
        ],
        vec![
            "float mantissa bits".to_owned(),
            mild.float_mantissa_bits.to_string(),
            medium.float_mantissa_bits.to_string(),
            aggressive.float_mantissa_bits.to_string(),
        ],
        vec![
            "double mantissa bits".to_owned(),
            mild.double_mantissa_bits.to_string(),
            medium.double_mantissa_bits.to_string(),
            aggressive.double_mantissa_bits.to_string(),
        ],
        vec![
            "Energy saved per FP operation".to_owned(),
            format!("{:.0}%", mild.fp_energy_saved * 100.0),
            format!("{:.0}%", medium.fp_energy_saved * 100.0),
            format!("{:.0}%", aggressive.fp_energy_saved * 100.0),
        ],
        vec![
            "Arithmetic timing error probability".to_owned(),
            format!("{:.0e}", mild.timing_error_prob),
            format!("{:.0e}", medium.timing_error_prob),
            format!("{:.0e}", aggressive.timing_error_prob),
        ],
        vec![
            "Energy saved per integer operation".to_owned(),
            format!("{:.0}%", mild.alu_energy_saved * 100.0),
            format!("{:.0}%", medium.alu_energy_saved * 100.0),
            format!("{:.0}%", aggressive.alu_energy_saved * 100.0),
        ],
    ];

    if opts.json {
        for row in &rows {
            println!(
                "{{\"strategy\":{:?},\"mild\":{:?},\"medium\":{:?},\"aggressive\":{:?}}}",
                row[0], row[1], row[2], row[3]
            );
        }
        return;
    }
    println!("Table 2: approximation strategies simulated in the evaluation");
    println!();
    println!("{}", render_table(&["Strategy", "Mild", "Medium", "Aggressive"], &rows));
    println!("All Medium values are taken from the literature (section 4.2).");
}
