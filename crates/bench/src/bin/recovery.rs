//! `recovery` — the graceful-degradation benchmark: all nine apps under a
//! chaos-amplified Aggressive configuration, with and without the
//! QoS-guarded recovery ladder.
//!
//! For every app the same `--runs` chaos seeds are run twice: once
//! *unguarded* (the paper's protocol — whatever comes out is scored, a
//! crash is worst case) and once *guarded* by
//! [`Policy::standard()`](enerj_apps::recovery::Policy::standard) —
//! watchdog, reference-free output check, QoS threshold 0.1, and the
//! Mild → Precise escalation ladder. Both halves land in one
//! `enerj-campaign/5` report (`results/BENCH_recovery.json`, labels
//! `unguarded` / `guarded`), so `faultscope --causes` can break the
//! retries down afterwards.
//!
//! The table reports, per app: how many unguarded trials fail the 0.1
//! error line, how many guarded trials still do (the Precise rung is a
//! guaranteed backstop, so this should be zero), how many trials escalated,
//! and the recovery energy overhead — the price of the retries, which is
//! *charged* to the guarded trials' energy, never hidden. `--amplify X`
//! scales the chaos fault rates (default 40x Aggressive).

use std::sync::Arc;

use enerj_apps::all_apps;
use enerj_apps::recovery::{chaos_config, Policy};
use enerj_apps::trials::{run_campaign_with, TrialSpec};
use enerj_bench::cli::Options;
use enerj_bench::{finish_campaign, render_table};
use enerj_hw::config::HwConfig;

/// Trials with error below this are "acceptable" — the same 0.1 line the
/// standard policy's QoS threshold enforces.
const ACCEPTABLE_ERROR: f64 = 0.1;

fn main() {
    let mut opts = Options::parse(std::env::args(), 10);
    let amplify = take_amplify(&mut opts).unwrap_or(40.0);
    let chaos: HwConfig = chaos_config(amplify);
    let apps = all_apps();

    // One campaign, both halves: unguarded first, then guarded with the
    // same seeds, so the comparison is seed-for-seed.
    let mut specs = Vec::new();
    let mut references = Vec::new();
    for app in &apps {
        let reference = Arc::new(enerj_apps::harness::reference(app).output);
        references.push(Arc::clone(&reference));
        for i in 0..opts.runs {
            specs.push(TrialSpec::scored(
                app,
                "unguarded",
                chaos,
                enerj_apps::harness::FAULT_SEED_BASE ^ i,
                Arc::clone(&reference),
            ));
        }
    }
    for (app, reference) in apps.iter().zip(&references) {
        for i in 0..opts.runs {
            specs.push(
                TrialSpec::scored(
                    app,
                    "guarded",
                    chaos,
                    enerj_apps::harness::FAULT_SEED_BASE ^ i,
                    Arc::clone(reference),
                )
                .with_recovery(Policy::standard()),
            );
        }
    }
    let report = run_campaign_with(&specs, &opts.campaign_options());

    let mut rows = Vec::new();
    let mut failing_total = 0usize;
    let mut rescued_total = 0usize;
    for app in &apps {
        let name = app.meta.name;
        let unguarded_fail =
            report.trials_for(name, "unguarded").filter(|t| t.error >= ACCEPTABLE_ERROR).count();
        let guarded_fail =
            report.trials_for(name, "guarded").filter(|t| t.error >= ACCEPTABLE_ERROR).count();
        let escalated = report.trials_for(name, "guarded").filter(|t| t.attempts > 1).count();
        let recovered = report.trials_for(name, "guarded").filter(|t| t.recovered()).count();
        let overhead: f64 =
            report.trials_for(name, "guarded").map(|t| t.recovery_energy_overhead).sum();
        let guarded_energy: f64 = report.trials_for(name, "guarded").map(|t| t.energy.total).sum();
        failing_total += unguarded_fail;
        rescued_total += unguarded_fail.saturating_sub(guarded_fail);
        rows.push(vec![
            name.to_owned(),
            format!("{unguarded_fail}/{}", opts.runs),
            format!("{guarded_fail}/{}", opts.runs),
            escalated.to_string(),
            recovered.to_string(),
            format!("{:.1}%", 100.0 * overhead / guarded_energy.max(f64::MIN_POSITIVE)),
        ]);
        if opts.json {
            println!(
                "{{\"app\":\"{name}\",\"amplify\":{amplify},\"runs\":{},\
                 \"unguarded_failing\":{unguarded_fail},\"guarded_failing\":{guarded_fail},\
                 \"escalated\":{escalated},\"recovered\":{recovered},\
                 \"recovery_energy_overhead\":{overhead:.6}}}",
                opts.runs,
            );
        }
    }

    if !opts.json {
        println!(
            "Recovery under chaos ({amplify}x Aggressive fault rates, {} seeds per app)",
            opts.runs
        );
        println!();
        println!(
            "{}",
            render_table(
                &[
                    "Application",
                    "fail (plain)",
                    "fail (guarded)",
                    "escalated",
                    "recovered",
                    "retry energy"
                ],
                &rows,
            )
        );
        println!(
            "fail = trials with output error >= {ACCEPTABLE_ERROR}; retry energy = share of \
             guarded energy spent on rejected attempts."
        );
        let rate = if failing_total == 0 {
            100.0
        } else {
            100.0 * rescued_total as f64 / failing_total as f64
        };
        println!(
            "{rescued_total}/{failing_total} failing trials brought under the \
             {ACCEPTABLE_ERROR} line by the ladder ({rate:.0}%)."
        );
    }
    finish_campaign("recovery", &report, &opts);
}

/// Pulls `--amplify X` out of the free mode flags.
fn take_amplify(opts: &mut Options) -> Option<f64> {
    let i = opts.flags.iter().position(|f| f == "--amplify")?;
    let value = opts.flags.get(i + 1).expect("--amplify needs a value").clone();
    opts.flags.drain(i..=i + 1);
    Some(value.parse().expect("--amplify needs a number"))
}
