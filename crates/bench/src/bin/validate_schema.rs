//! `validate_schema` — check telemetry artifacts against the documented
//! schemas (DESIGN.md).
//!
//! ```text
//! validate_schema [--report <BENCH_*.json>]... [--fault-log <log.ndjson>]...
//!                 [--hwperf <BENCH_hwperf.json>]...
//!                 [--campaignperf <BENCH_campaignperf.json>]...
//!                 [--sched <BENCH_sched.json>]...
//!                 [--serve <BENCH_serveperf.json>]...
//!                 [--quanta-compare <a.json> <b.json>]...
//! ```
//!
//! Validates each `--report` against `enerj-campaign/5`, each `--fault-log`
//! against the NDJSON fault-event schema, each `--hwperf` against the
//! `enerj-hwperf/2` throughput-report schema, each `--campaignperf`
//! against the `enerj-campaignperf/1` campaign-engine report schema
//! (including the engine bit-identity verdict and the bounded reorder
//! window), each `--sched` against the `enerj-sched/1`
//! budget-scheduling report schema (including the scheduler's own
//! bit-identity verdict and the exact integer budget arithmetic), and
//! each `--serve` against the `enerj-serveperf/1` campaign-service report
//! schema (including the kill-resume byte-identity verdict).
//! `--quanta-compare` checks
//! that two campaign reports carry *identical* integer energy totals
//! (`energy_quanta` and `recovery_energy_overhead_quanta`), compared as
//! parsed 128-bit integers ([`Json::Int`] keeps literals lossless), so
//! values above 2^53 cannot be blurred by f64 parsing — the CI quanta-smoke
//! job runs the same campaign at two thread counts and requires the totals
//! to match exactly. Exit code 0 when everything conforms, 1 on the first
//! violation.

use std::process::ExitCode;

use enerj_bench::json::Json;
use enerj_bench::validate::{
    validate_campaign_report, validate_campaignperf_report, validate_fault_log,
    validate_hwperf_report, validate_sched_report, validate_serveperf_report,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("validate_schema: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Compares the top-level field `key` of two parsed reports for exact
/// integer equality: the field must be an integer or an object whose
/// values are integers (the `energy_quanta` breakdown), and every integer
/// is compared at full 128-bit precision.
fn compare_exact_field(a: &Json, b: &Json, key: &str) -> Result<(), String> {
    let va = a.get(key).ok_or_else(|| format!("first report: missing `{key}`"))?;
    let vb = b.get(key).ok_or_else(|| format!("second report: missing `{key}`"))?;
    match (va, vb) {
        (Json::Obj(_), Json::Obj(_)) => {
            let fa = va.as_object().expect("matched object");
            let fb = vb.as_object().expect("matched object");
            let keys_a: Vec<&str> = fa.iter().map(|(k, _)| k.as_str()).collect();
            let keys_b: Vec<&str> = fb.iter().map(|(k, _)| k.as_str()).collect();
            if keys_a != keys_b {
                return Err(format!("`{key}` field sets differ: {keys_a:?} vs {keys_b:?}"));
            }
            for (k, inner_a) in fa {
                let inner_b = vb.get(k).expect("key sets match");
                compare_exact_int(inner_a, inner_b, &format!("{key}.{k}"))?;
            }
            Ok(())
        }
        _ => compare_exact_int(va, vb, key),
    }
}

/// Exact comparison of two integer leaves. Non-integers (fractions,
/// exponents, or values outside i128) are a validation error, not a lossy
/// fallback: quanta that can't be parsed exactly can't be compared.
fn compare_exact_int(a: &Json, b: &Json, what: &str) -> Result<(), String> {
    let xa = a.as_i128().ok_or_else(|| format!("`{what}` is not an exact integer: {a:?}"))?;
    let xb = b.as_i128().ok_or_else(|| format!("`{what}` is not an exact integer: {b:?}"))?;
    if xa != xb {
        return Err(format!("`{what}` differs: {xa} vs {xb}"));
    }
    Ok(())
}

fn compare_quanta(path_a: &str, path_b: &str) -> Result<(), String> {
    let text_a = std::fs::read_to_string(path_a).map_err(|e| format!("{path_a}: {e}"))?;
    let text_b = std::fs::read_to_string(path_b).map_err(|e| format!("{path_b}: {e}"))?;
    let a = Json::parse(text_a.trim()).map_err(|e| format!("{path_a}: {e}"))?;
    let b = Json::parse(text_b.trim()).map_err(|e| format!("{path_b}: {e}"))?;
    for key in ["energy_quanta", "recovery_energy_overhead_quanta"] {
        compare_exact_field(&a, &b, key).map_err(|e| format!("{path_a} vs {path_b}: {e}"))?;
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let mut checked = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => {
                let path = it.next().ok_or("--report needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let trials =
                    validate_campaign_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-campaign/5, {trials} trials)");
                checked += 1;
            }
            "--fault-log" => {
                let path = it.next().ok_or("--fault-log needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let events = validate_fault_log(&text).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK ({events} fault events)");
                checked += 1;
            }
            "--hwperf" => {
                let path = it.next().ok_or("--hwperf needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let kernels =
                    validate_hwperf_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-hwperf/2, {kernels} kernel rows)");
                checked += 1;
            }
            "--campaignperf" => {
                let path = it.next().ok_or("--campaignperf needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let rows =
                    validate_campaignperf_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-campaignperf/1, {rows} engine rows)");
                checked += 1;
            }
            "--sched" => {
                let path = it.next().ok_or("--sched needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let rows = validate_sched_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-sched/1, {rows} baseline rows)");
                checked += 1;
            }
            "--serve" => {
                let path = it.next().ok_or("--serve needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let jobs =
                    validate_serveperf_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-serveperf/1, {jobs} throughput jobs)");
                checked += 1;
            }
            "--quanta-compare" => {
                let a = it.next().ok_or("--quanta-compare needs two paths")?;
                let b = it.next().ok_or("--quanta-compare needs two paths")?;
                compare_quanta(a, b)?;
                println!("{a} == {b}: OK (energy quanta exactly equal)");
                checked += 1;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`\nusage: validate_schema \
                     [--report <path>]... [--fault-log <path>]... [--hwperf <path>]... \
                     [--campaignperf <path>]... [--sched <path>]... [--serve <path>]... \
                     [--quanta-compare <a> <b>]..."
                ))
            }
        }
    }
    if checked == 0 {
        return Err("nothing to validate; pass --report, --fault-log, --hwperf, \
                    --campaignperf, --sched, --serve and/or --quanta-compare"
            .to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{compare_exact_field, Json};

    #[test]
    fn quanta_comparison_is_exact_beyond_f64_precision() {
        // 2^53 and 2^53 + 1 are the classic f64 collision: a parser that
        // rounds through f64 would call these reports identical.
        let a = Json::parse(
            r#"{"energy_quanta":{"total":9007199254740992,"baseline_total":9007199254740992},
                "recovery_energy_overhead_quanta":0}"#,
        )
        .unwrap();
        let b = Json::parse(
            r#"{"energy_quanta":{"total":9007199254740993,"baseline_total":9007199254740992},
                "recovery_energy_overhead_quanta":0}"#,
        )
        .unwrap();
        let err = compare_exact_field(&a, &b, "energy_quanta").unwrap_err();
        assert!(err.contains("9007199254740992 vs 9007199254740993"), "{err}");
        assert!(compare_exact_field(&a, &a, "energy_quanta").is_ok());
        assert!(compare_exact_field(&a, &b, "recovery_energy_overhead_quanta").is_ok());
    }

    #[test]
    fn non_integer_quanta_are_an_error_not_a_fallback() {
        let a = Json::parse(r#"{"q":1.5}"#).unwrap();
        let b = Json::parse(r#"{"q":1.5}"#).unwrap();
        let err = compare_exact_field(&a, &b, "q").unwrap_err();
        assert!(err.contains("not an exact integer"), "{err}");
        // Differing field sets in the breakdown object are drift, too.
        let a = Json::parse(r#"{"q":{"total":1}}"#).unwrap();
        let b = Json::parse(r#"{"q":{"grand_total":1}}"#).unwrap();
        assert!(compare_exact_field(&a, &b, "q").unwrap_err().contains("field sets"));
    }
}
