//! `validate_schema` — check telemetry artifacts against the documented
//! schemas (DESIGN.md).
//!
//! ```text
//! validate_schema [--report <BENCH_*.json>]... [--fault-log <log.ndjson>]...
//!                 [--hwperf <BENCH_hwperf.json>]...
//!                 [--quanta-compare <a.json> <b.json>]...
//! ```
//!
//! Validates each `--report` against `enerj-campaign/4`, each `--fault-log`
//! against the NDJSON fault-event schema, and each `--hwperf` against the
//! `enerj-hwperf/1` throughput-report schema. `--quanta-compare` checks
//! that two campaign reports carry *byte-identical* integer energy totals
//! (`energy_quanta` and `recovery_energy_overhead_quanta`), comparing the
//! raw JSON text so values above 2^53 cannot be blurred by f64 parsing —
//! the CI quanta-smoke job runs the same campaign at two thread counts and
//! requires the totals to match exactly. Exit code 0 when everything
//! conforms, 1 on the first violation.

use std::process::ExitCode;

use enerj_bench::json::Json;
use enerj_bench::validate::{validate_campaign_report, validate_fault_log, validate_hwperf_report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("validate_schema: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Extracts the raw text of the top-level `"key":<value>` pair from a
/// campaign report, where `<value>` is an integer or a `{...}` object of
/// integers. Textual extraction keeps >2^53 quanta byte-exact.
fn raw_field(text: &str, key: &str) -> Result<String, String> {
    let needle = format!("\"{key}\":");
    let start = text.find(&needle).ok_or_else(|| format!("missing `{key}`"))?;
    let rest = &text[start + needle.len()..];
    let end = if rest.starts_with('{') {
        rest.find('}').map(|i| i + 1).ok_or_else(|| format!("unterminated `{key}` object"))?
    } else {
        rest.find([',', '}']).ok_or_else(|| format!("unterminated `{key}` value"))?
    };
    Ok(rest[..end].to_owned())
}

fn compare_quanta(path_a: &str, path_b: &str) -> Result<(), String> {
    let a = std::fs::read_to_string(path_a).map_err(|e| format!("{path_a}: {e}"))?;
    let b = std::fs::read_to_string(path_b).map_err(|e| format!("{path_b}: {e}"))?;
    for key in ["energy_quanta", "recovery_energy_overhead_quanta"] {
        let va = raw_field(&a, key).map_err(|e| format!("{path_a}: {e}"))?;
        let vb = raw_field(&b, key).map_err(|e| format!("{path_b}: {e}"))?;
        if va != vb {
            return Err(format!("`{key}` differs between {path_a} and {path_b}:\n  {va}\n  {vb}"));
        }
    }
    Ok(())
}

fn run(args: &[String]) -> Result<(), String> {
    let mut checked = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => {
                let path = it.next().ok_or("--report needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let trials =
                    validate_campaign_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-campaign/4, {trials} trials)");
                checked += 1;
            }
            "--fault-log" => {
                let path = it.next().ok_or("--fault-log needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let events = validate_fault_log(&text).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK ({events} fault events)");
                checked += 1;
            }
            "--hwperf" => {
                let path = it.next().ok_or("--hwperf needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let kernels =
                    validate_hwperf_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-hwperf/1, {kernels} kernel rows)");
                checked += 1;
            }
            "--quanta-compare" => {
                let a = it.next().ok_or("--quanta-compare needs two paths")?;
                let b = it.next().ok_or("--quanta-compare needs two paths")?;
                compare_quanta(a, b)?;
                println!("{a} == {b}: OK (energy quanta byte-identical)");
                checked += 1;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`\nusage: validate_schema \
                     [--report <path>]... [--fault-log <path>]... [--hwperf <path>]... \
                     [--quanta-compare <a> <b>]..."
                ))
            }
        }
    }
    if checked == 0 {
        return Err("nothing to validate; pass --report and/or --fault-log".to_owned());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::raw_field;

    #[test]
    fn raw_field_extracts_integers_and_objects_textually() {
        let text = r#"{"schema":"enerj-campaign/4","recovery_energy_overhead_quanta":340282366920938463463374607431768211455,"energy_quanta":{"total":12,"baseline_total":34},"trials":[]}"#;
        // Wider than u64: only textual extraction keeps it exact.
        assert_eq!(
            raw_field(text, "recovery_energy_overhead_quanta").unwrap(),
            "340282366920938463463374607431768211455"
        );
        assert_eq!(
            raw_field(text, "energy_quanta").unwrap(),
            r#"{"total":12,"baseline_total":34}"#
        );
        assert!(raw_field(text, "absent").is_err());
    }
}
