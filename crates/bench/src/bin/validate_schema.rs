//! `validate_schema` — check telemetry artifacts against the documented
//! schemas (DESIGN.md).
//!
//! ```text
//! validate_schema [--report <BENCH_*.json>]... [--fault-log <log.ndjson>]...
//!                 [--hwperf <BENCH_hwperf.json>]...
//! ```
//!
//! Validates each `--report` against `enerj-campaign/3`, each `--fault-log`
//! against the NDJSON fault-event schema, and each `--hwperf` against the
//! `enerj-hwperf/1` throughput-report schema. Exit code 0 when everything
//! conforms, 1 on the first violation — the CI smoke and perf-smoke jobs
//! run this over freshly generated artifacts to catch emitter drift.

use std::process::ExitCode;

use enerj_bench::json::Json;
use enerj_bench::validate::{validate_campaign_report, validate_fault_log, validate_hwperf_report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("validate_schema: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut checked = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--report" => {
                let path = it.next().ok_or("--report needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let trials =
                    validate_campaign_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-campaign/3, {trials} trials)");
                checked += 1;
            }
            "--fault-log" => {
                let path = it.next().ok_or("--fault-log needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let events = validate_fault_log(&text).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK ({events} fault events)");
                checked += 1;
            }
            "--hwperf" => {
                let path = it.next().ok_or("--hwperf needs a path")?;
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                let parsed = Json::parse(text.trim()).map_err(|e| format!("{path}: {e}"))?;
                let kernels =
                    validate_hwperf_report(&parsed).map_err(|e| format!("{path}: {e}"))?;
                println!("{path}: OK (enerj-hwperf/1, {kernels} kernel rows)");
                checked += 1;
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}`\nusage: validate_schema \
                     [--report <path>]... [--fault-log <path>]... [--hwperf <path>]..."
                ))
            }
        }
    }
    if checked == 0 {
        return Err("nothing to validate; pass --report and/or --fault-log".to_owned());
    }
    Ok(())
}
