//! `hwbench` — throughput microbenchmarks for the hardware substrate.
//!
//! Measures the amortized fault scheduler (countdowns + bit-quanta
//! accounting, see DESIGN.md "Amortized fault scheduling") against a
//! faithful in-binary replica of the pre-amortization per-access hot path:
//! one geometric-skip `flip_bits` draw (or `gen_bool`) plus f64
//! byte-second accounting per access. Four microkernels (sram/dram/alu/fpu)
//! run at each Table 2 level, plus a second grid comparing the scalar
//! amortized entry points against the whole-slice batched API (DESIGN.md
//! "Batched kernels"), plus a fig5-shaped macro loop over the real
//! applications; results land in `results/BENCH_hwperf.json` (schema
//! `enerj-hwperf/2`).
//!
//! ```text
//! hwbench [--quick] [--json]
//! ```
//!
//! `--quick` shrinks the op counts ~10x for the CI perf-smoke job; the
//! committed capture uses the full counts. Wall-clock throughput depends on
//! the host, so the JSON records both samplers from the *same* process and
//! build — the speedup column is the meaningful number. Throughput
//! denominators are clamped away from zero so a fast `--quick` run can
//! never serialize `inf`/`NaN` into the report.

use std::fmt::Write as _;
use std::time::Instant;

use enerj_bench::cli::Options;
use enerj_bench::{bench_report_path, render_table};
use enerj_hw::config::{HwConfig, Level};
use enerj_hw::stats::OpKind;
use enerj_hw::{DramArray, Hardware};

/// Faithful replica of the pre-amortization hot path, for the "before"
/// column. Every access pays what `Hardware` used to pay: a per-access
/// geometric-skip sampler draw (`fault::flip_bits`) or Bernoulli trial
/// (`gen_bool`), per-access f64 byte-second accounting, and an accumulated
/// f64 clock. Only the fault bookkeeping that fed telemetry is reduced to a
/// counter — that side was O(faults) before and after, so it cancels.
mod baseline {
    use enerj_hw::clock::SimClock;
    use enerj_hw::config::{ErrorMode, HwConfig};
    use enerj_hw::fault;
    use enerj_hw::fpu;
    use enerj_hw::stats::{MemKind, OpKind, Stats};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub struct Baseline {
        cfg: HwConfig,
        rng: StdRng,
        clock: SimClock,
        stats: Stats,
        last_int: u64,
        last_fp: u64,
        pub faults: u64,
    }

    impl Baseline {
        pub fn new(cfg: HwConfig, seed: u64) -> Self {
            Baseline {
                cfg,
                rng: StdRng::seed_from_u64(seed),
                clock: SimClock::new(),
                stats: Stats::new(),
                last_int: 0,
                last_fp: 0,
                faults: 0,
            }
        }

        pub fn now(&self) -> f64 {
            self.clock.now()
        }

        pub fn stats(&self) -> &Stats {
            &self.stats
        }

        /// Replica of the pre-change `Hardware::note_fault`: a real
        /// (non-inlined) call in the fault branch, exactly as the old hot
        /// path had, so both samplers pay the same register pressure.
        #[cold]
        #[inline(never)]
        fn note_fault(&mut self) {
            self.stats.record_fault();
            self.faults += 1;
        }

        fn sram_access(&mut self, bits: u64, width: u32, enabled: bool, p: f64) -> u64 {
            let bytes = f64::from(width) / 8.0;
            self.stats.record_storage(MemKind::Sram, true, bytes, self.cfg.seconds_per_op);
            if !enabled {
                return bits;
            }
            let out = fault::flip_bits(bits, width, p, &mut self.rng);
            if out != bits {
                self.note_fault();
            }
            out
        }

        pub fn sram_read(&mut self, bits: u64, width: u32) -> u64 {
            let p = self.cfg.params.sram_read_upset_prob;
            self.sram_access(bits, width, self.cfg.mask.sram_read, p)
        }

        pub fn sram_write(&mut self, bits: u64, width: u32) -> u64 {
            let p = self.cfg.params.sram_write_failure_prob;
            self.sram_access(bits, width, self.cfg.mask.sram_write, p)
        }

        pub fn dram_read(&mut self, stored: u64, width: u32, last_access: &mut f64) -> u64 {
            self.clock.advance(self.cfg.seconds_per_op);
            let now = self.clock.now();
            let dt = now - *last_access;
            *last_access = now;
            if !self.cfg.mask.dram {
                return stored;
            }
            let p = fault::decay_probability(self.cfg.params.dram_flip_per_second, dt);
            let out = fault::flip_bits(stored, width, p, &mut self.rng);
            if out != stored {
                self.note_fault();
            }
            out
        }

        pub fn approx_int_result(&mut self, raw: u64, width: u32) -> u64 {
            self.clock.advance(self.cfg.seconds_per_op);
            self.stats.record_op(OpKind::Int, true);
            let p = self.cfg.params.timing_error_prob;
            let out = if self.cfg.mask.fu_timing && self.rng.gen_bool(p) {
                self.note_fault();
                match self.cfg.error_mode {
                    ErrorMode::SingleBitFlip => fault::flip_one_bit(raw, width, &mut self.rng),
                    ErrorMode::LastValue => self.last_int & fault::low_mask(width),
                    ErrorMode::RandomValue => fault::random_bits(width, &mut self.rng),
                }
            } else {
                raw & fault::low_mask(width)
            };
            self.last_int = out;
            out
        }

        pub fn approx_f64_result(&mut self, raw: f64) -> f64 {
            self.clock.advance(self.cfg.seconds_per_op);
            self.stats.record_op(OpKind::Fp, true);
            let bits = raw.to_bits();
            let p = self.cfg.params.timing_error_prob;
            let out = if self.cfg.mask.fu_timing && self.rng.gen_bool(p) {
                self.note_fault();
                match self.cfg.error_mode {
                    ErrorMode::SingleBitFlip => fault::flip_one_bit(bits, 64, &mut self.rng),
                    ErrorMode::LastValue => self.last_fp,
                    ErrorMode::RandomValue => fault::random_bits(64, &mut self.rng),
                }
            } else {
                bits
            };
            self.last_fp = out;
            f64::from_bits(out)
        }

        pub fn approx_f64_operand(&self, x: f64) -> f64 {
            if self.cfg.mask.fp_width {
                fpu::truncate_f64(x, self.cfg.params.double_mantissa_bits)
            } else {
                x
            }
        }
    }
}

/// One microkernel row: ops/sec under both samplers.
struct KernelRow {
    kernel: &'static str,
    level: Level,
    ops: u64,
    baseline_ops_per_sec: f64,
    amortized_ops_per_sec: f64,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.amortized_ops_per_sec / self.baseline_ops_per_sec
    }
}

/// One batched-API row: the same unit driven one op at a time versus
/// through the whole-slice entry points, both on the amortized substrate.
struct BatchedRow {
    kernel: &'static str,
    level: Level,
    ops: u64,
    scalar_ops_per_sec: f64,
    batched_ops_per_sec: f64,
}

impl BatchedRow {
    fn speedup(&self) -> f64 {
        self.batched_ops_per_sec / self.scalar_ops_per_sec
    }
}

/// One macro row: whole-application throughput on the current substrate.
struct MacroRow {
    app: String,
    level: Level,
    ops: u64,
    ops_per_sec: f64,
}

const SEED: u64 = 0x4877_BE9C; // "hwbe(nch)"
const DRAM_LEN: usize = 1024;
/// Slice length for the batched microkernels: long enough to amortize the
/// per-slice countdown resolution, short enough to stay cache-resident.
const BATCH: usize = 4096;

/// Ops/sec with the denominator clamped away from zero: a sub-nanosecond
/// wall reading (possible under `--quick` on a fast host) must not
/// serialize `inf` or `NaN` into the report.
fn rate(ops: u64, wall: f64) -> f64 {
    ops as f64 / wall.max(1e-9)
}

fn time<F: FnMut() -> u64>(mut f: F) -> (u64, f64) {
    let start = Instant::now();
    let sink = f();
    let wall = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    (sink, wall)
}

/// SRAM kernel: alternating 32-bit read/write on a register-resident value.
fn sram_kernel(level: Level, accesses: u64) -> KernelRow {
    let cfg = HwConfig::for_level(level);
    let mut base = baseline::Baseline::new(cfg, SEED);
    let (_, base_wall) = time(|| {
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..accesses / 2 {
            x = base.sram_read(x, 32);
            x = base.sram_write(x.wrapping_add(1), 32);
        }
        x
    });
    let mut hw = Hardware::new(cfg, SEED);
    let (_, amort_wall) = time(|| {
        let mut x = 0xDEAD_BEEFu64;
        for _ in 0..accesses / 2 {
            x = hw.sram_read(x, 32, true);
            x = hw.sram_write(x.wrapping_add(1), 32, true);
        }
        x
    });
    // Both samplers must have walked the same access count (sanity: the
    // baseline's accounting is per-access, the amortized side's is lazy).
    assert!(!base.stats().sram_approx_quanta.is_zero());
    assert!(!hw.stats().sram_approx_quanta.is_zero());
    KernelRow {
        kernel: "sram",
        level,
        ops: accesses,
        baseline_ops_per_sec: rate(accesses, base_wall),
        amortized_ops_per_sec: rate(accesses, amort_wall),
    }
}

/// DRAM kernel: strided reads over a decaying approximate array.
fn dram_kernel(level: Level, accesses: u64) -> KernelRow {
    let cfg = HwConfig::for_level(level);
    let mut base = baseline::Baseline::new(cfg, SEED);
    let (_, base_wall) = time(|| {
        let mut words = vec![0xA5A5_A5A5u64; DRAM_LEN];
        let mut last = vec![base.now(); DRAM_LEN];
        let mut sink = 0u64;
        for i in 0..accesses {
            let j = (i.wrapping_mul(17) % DRAM_LEN as u64) as usize;
            let v = base.dram_read(words[j], 32, &mut last[j]);
            words[j] = v;
            sink = sink.wrapping_add(v);
        }
        sink
    });
    let mut hw = Hardware::new(cfg, SEED);
    let (_, amort_wall) = time(|| {
        let mut arr = DramArray::new(&mut hw, DRAM_LEN, 32, true);
        let mut sink = 0u64;
        for i in 0..accesses {
            let j = (i.wrapping_mul(17) % DRAM_LEN as u64) as usize;
            sink = sink.wrapping_add(arr.read(&mut hw, j));
        }
        arr.retire(&mut hw);
        sink
    });
    KernelRow {
        kernel: "dram",
        level,
        ops: accesses,
        baseline_ops_per_sec: rate(accesses, base_wall),
        amortized_ops_per_sec: rate(accesses, amort_wall),
    }
}

/// ALU kernel: 64-bit approximate integer result phases.
fn alu_kernel(level: Level, ops: u64) -> KernelRow {
    let cfg = HwConfig::for_level(level);
    let mut base = baseline::Baseline::new(cfg, SEED);
    let (_, base_wall) = time(|| {
        let mut x = 1u64;
        for i in 0..ops {
            x = base.approx_int_result(x.wrapping_mul(3).wrapping_add(i), 64);
        }
        x
    });
    let mut hw = Hardware::new(cfg, SEED);
    let (_, amort_wall) = time(|| {
        let mut x = 1u64;
        for i in 0..ops {
            x = hw.approx_int_result(x.wrapping_mul(3).wrapping_add(i), 64);
        }
        x
    });
    assert_eq!(hw.stats().int_approx_ops, ops);
    KernelRow {
        kernel: "alu",
        level,
        ops,
        baseline_ops_per_sec: rate(ops, base_wall),
        amortized_ops_per_sec: rate(ops, amort_wall),
    }
}

/// FPU kernel: operand truncation plus `f64` result phases.
fn fpu_kernel(level: Level, ops: u64) -> KernelRow {
    let cfg = HwConfig::for_level(level);
    let mut base = baseline::Baseline::new(cfg, SEED);
    let (_, base_wall) = time(|| {
        let mut x = 1.000_1f64;
        for _ in 0..ops {
            x = base.approx_f64_result(base.approx_f64_operand(x) * 1.000_000_1);
            if !x.is_finite() || x > 1e12 {
                x = 1.000_1;
            }
        }
        x.to_bits()
    });
    let mut hw = Hardware::new(cfg, SEED);
    let (_, amort_wall) = time(|| {
        let mut x = 1.000_1f64;
        for _ in 0..ops {
            x = hw.approx_f64_result(hw.approx_f64_operand(x) * 1.000_000_1);
            if !x.is_finite() || x > 1e12 {
                x = 1.000_1;
            }
        }
        x.to_bits()
    });
    KernelRow {
        kernel: "fpu",
        level,
        ops,
        baseline_ops_per_sec: rate(ops, base_wall),
        amortized_ops_per_sec: rate(ops, amort_wall),
    }
}

/// Batched SRAM: whole-slice read/write passes versus the same accesses
/// one word at a time, both on the amortized substrate.
fn sram_batched(level: Level, accesses: u64) -> BatchedRow {
    let cfg = HwConfig::for_level(level);
    let rounds = accesses / (2 * BATCH as u64);
    let ops = rounds * 2 * BATCH as u64;
    let mut hw = Hardware::new(cfg, SEED);
    let (_, scalar_wall) = time(|| {
        let mut buf: Vec<u64> = (0..BATCH as u64).collect();
        for _ in 0..rounds {
            for x in &mut buf {
                *x = hw.sram_read(*x, 32, true);
            }
            for x in &mut buf {
                *x = hw.sram_write(x.wrapping_add(1), 32, true);
            }
        }
        buf[0]
    });
    let mut hw = Hardware::new(cfg, SEED);
    let (_, batched_wall) = time(|| {
        let mut buf: Vec<u64> = (0..BATCH as u64).collect();
        for _ in 0..rounds {
            hw.sram_read_slice(&mut buf, 32, true);
            for x in &mut buf {
                *x = x.wrapping_add(1);
            }
            hw.sram_write_slice(&mut buf, 32, true);
        }
        buf[0]
    });
    BatchedRow {
        kernel: "sram",
        level,
        ops,
        scalar_ops_per_sec: rate(ops, scalar_wall),
        batched_ops_per_sec: rate(ops, batched_wall),
    }
}

/// Batched DRAM: whole-array slice reads versus per-element reads over the
/// same decaying array.
fn dram_batched(level: Level, accesses: u64) -> BatchedRow {
    let cfg = HwConfig::for_level(level);
    let rounds = accesses / DRAM_LEN as u64;
    let ops = rounds * DRAM_LEN as u64;
    let mut hw = Hardware::new(cfg, SEED);
    let (_, scalar_wall) = time(|| {
        let mut arr = DramArray::new(&mut hw, DRAM_LEN, 32, true);
        let mut sink = 0u64;
        for _ in 0..rounds {
            for j in 0..DRAM_LEN {
                sink = sink.wrapping_add(arr.read(&mut hw, j));
            }
        }
        arr.retire(&mut hw);
        sink
    });
    let mut hw = Hardware::new(cfg, SEED);
    let (_, batched_wall) = time(|| {
        let mut arr = DramArray::new(&mut hw, DRAM_LEN, 32, true);
        let mut out = vec![0u64; DRAM_LEN];
        let mut sink = 0u64;
        for _ in 0..rounds {
            arr.read_slice(&mut hw, 0, &mut out);
            sink = sink.wrapping_add(out[0]);
        }
        arr.retire(&mut hw);
        sink
    });
    BatchedRow {
        kernel: "dram",
        level,
        ops,
        scalar_ops_per_sec: rate(ops, scalar_wall),
        batched_ops_per_sec: rate(ops, batched_wall),
    }
}

/// Batched ALU: whole-slice 64-bit result phases versus one op at a time.
fn alu_batched(level: Level, total_ops: u64) -> BatchedRow {
    let cfg = HwConfig::for_level(level);
    let rounds = total_ops / BATCH as u64;
    let ops = rounds * BATCH as u64;
    let mut hw = Hardware::new(cfg, SEED);
    let (_, scalar_wall) = time(|| {
        let mut buf: Vec<u64> = (0..BATCH as u64).collect();
        for _ in 0..rounds {
            for x in &mut buf {
                *x = hw.approx_int_result(x.wrapping_mul(3).wrapping_add(1), 64);
            }
        }
        buf[0]
    });
    let mut hw = Hardware::new(cfg, SEED);
    let (_, batched_wall) = time(|| {
        let mut buf: Vec<u64> = (0..BATCH as u64).collect();
        for _ in 0..rounds {
            for x in &mut buf {
                *x = x.wrapping_mul(3).wrapping_add(1);
            }
            hw.approx_int_result_slice(&mut buf, 64);
        }
        buf[0]
    });
    assert_eq!(hw.stats().int_approx_ops, ops);
    BatchedRow {
        kernel: "alu",
        level,
        ops,
        scalar_ops_per_sec: rate(ops, scalar_wall),
        batched_ops_per_sec: rate(ops, batched_wall),
    }
}

/// Batched FPU: whole-slice operand truncation plus `f64` result phases
/// versus one op at a time. Unlike [`fpu_kernel`], no overflow guard:
/// multiplying by `1 + 1e-7` for at most `rounds` passes keeps every value
/// near 1.0 by construction, and a rare timing fault producing inf/NaN
/// costs neither arm anything (non-finite arithmetic runs at full speed).
fn fpu_batched(level: Level, total_ops: u64) -> BatchedRow {
    let cfg = HwConfig::for_level(level);
    let rounds = total_ops / BATCH as u64;
    let ops = rounds * BATCH as u64;
    let seed: Vec<f64> = (0..BATCH).map(|i| 1.000_1 + i as f64 * 1e-7).collect();
    let mut hw = Hardware::new(cfg, SEED);
    let (_, scalar_wall) = time(|| {
        let mut buf = seed.clone();
        for _ in 0..rounds {
            for x in &mut buf {
                *x = hw.approx_f64_result(hw.approx_f64_operand(*x) * 1.000_000_1);
            }
        }
        buf[0].to_bits()
    });
    let mut hw = Hardware::new(cfg, SEED);
    let (_, batched_wall) = time(|| {
        let mut buf = seed.clone();
        for _ in 0..rounds {
            hw.approx_f64_operand_slice(&mut buf);
            for x in &mut buf {
                *x *= 1.000_000_1;
            }
            hw.approx_f64_result_slice(&mut buf);
        }
        buf[0].to_bits()
    });
    BatchedRow {
        kernel: "fpu",
        level,
        ops,
        scalar_ops_per_sec: rate(ops, scalar_wall),
        batched_ops_per_sec: rate(ops, batched_wall),
    }
}

/// Fig5-shaped macro loop: every registered application, full fault
/// injection, one seeded run per level on the current substrate.
fn macro_rows(quick: bool) -> Vec<MacroRow> {
    let apps = enerj_apps::all_apps();
    let apps: Vec<_> = if quick { apps.into_iter().take(2).collect() } else { apps };
    let mut rows = Vec::new();
    for app in &apps {
        for level in Level::ALL {
            let start = Instant::now();
            let m =
                enerj_apps::harness::approximate(app, level, enerj_apps::harness::FAULT_SEED_BASE);
            let wall = start.elapsed().as_secs_f64();
            let ops = m.stats.total_ops(OpKind::Int) + m.stats.total_ops(OpKind::Fp);
            rows.push(MacroRow {
                app: app.meta.name.to_owned(),
                level,
                ops,
                ops_per_sec: rate(ops, wall),
            });
        }
    }
    rows
}

fn to_json(
    quick: bool,
    kernels: &[KernelRow],
    batched: &[BatchedRow],
    macros: &[MacroRow],
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"enerj-hwperf/2\",");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"kernels\": [\n");
    for (i, r) in kernels.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"level\": \"{}\", \"ops\": {}, \
             \"baseline_ops_per_sec\": {:.1}, \"amortized_ops_per_sec\": {:.1}, \
             \"speedup\": {:.3}}}",
            r.kernel,
            r.level,
            r.ops,
            r.baseline_ops_per_sec,
            r.amortized_ops_per_sec,
            r.speedup()
        );
        out.push_str(if i + 1 < kernels.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"batched\": [\n");
    for (i, r) in batched.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"kernel\": \"{}\", \"level\": \"{}\", \"ops\": {}, \
             \"scalar_ops_per_sec\": {:.1}, \"batched_ops_per_sec\": {:.1}, \
             \"speedup\": {:.3}}}",
            r.kernel,
            r.level,
            r.ops,
            r.scalar_ops_per_sec,
            r.batched_ops_per_sec,
            r.speedup()
        );
        out.push_str(if i + 1 < batched.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"macro\": [\n");
    for (i, r) in macros.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"app\": \"{}\", \"level\": \"{}\", \"ops\": {}, \"ops_per_sec\": {:.1}}}",
            r.app, r.level, r.ops, r.ops_per_sec
        );
        out.push_str(if i + 1 < macros.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let opts = Options::parse(std::env::args(), 1);
    let quick = opts.has_flag("--quick");
    let micro_ops: u64 = if quick { 400_000 } else { 4_000_000 };

    let mut kernels = Vec::new();
    for level in Level::ALL {
        eprintln!("hwbench: {level} microkernels ({micro_ops} ops each)...");
        kernels.push(sram_kernel(level, micro_ops));
        kernels.push(dram_kernel(level, micro_ops));
        kernels.push(alu_kernel(level, micro_ops));
        kernels.push(fpu_kernel(level, micro_ops));
    }
    let mut batched = Vec::new();
    for level in Level::ALL {
        eprintln!("hwbench: {level} batched microkernels ({micro_ops} ops each)...");
        batched.push(sram_batched(level, micro_ops));
        batched.push(dram_batched(level, micro_ops));
        batched.push(alu_batched(level, micro_ops));
        batched.push(fpu_batched(level, micro_ops));
    }
    eprintln!("hwbench: fig5-shaped macro loop...");
    let macros = macro_rows(quick);

    let json = to_json(quick, &kernels, &batched, &macros);
    if opts.json {
        print!("{json}");
    } else {
        let rows: Vec<Vec<String>> = kernels
            .iter()
            .map(|r| {
                vec![
                    r.kernel.to_owned(),
                    r.level.to_string(),
                    format!("{:.2}M", r.baseline_ops_per_sec / 1e6),
                    format!("{:.2}M", r.amortized_ops_per_sec / 1e6),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect();
        println!("Hardware-substrate throughput (ops/sec; before = per-access sampler)");
        println!("{}", render_table(&["kernel", "level", "before", "after", "speedup"], &rows));
        let rows: Vec<Vec<String>> = batched
            .iter()
            .map(|r| {
                vec![
                    r.kernel.to_owned(),
                    r.level.to_string(),
                    format!("{:.2}M", r.scalar_ops_per_sec / 1e6),
                    format!("{:.2}M", r.batched_ops_per_sec / 1e6),
                    format!("{:.2}x", r.speedup()),
                ]
            })
            .collect();
        println!("Batched whole-slice API vs one-op-at-a-time (same substrate)");
        println!("{}", render_table(&["kernel", "level", "scalar", "batched", "speedup"], &rows));
        let rows: Vec<Vec<String>> = macros
            .iter()
            .map(|r| {
                vec![
                    r.app.clone(),
                    r.level.to_string(),
                    format!("{}", r.ops),
                    format!("{:.2}M", r.ops_per_sec / 1e6),
                ]
            })
            .collect();
        println!("Application throughput on the amortized substrate");
        println!("{}", render_table(&["app", "level", "ops", "ops/sec"], &rows));
    }

    let path = bench_report_path("hwperf");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("hwperf report -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}
