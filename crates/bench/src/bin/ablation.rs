//! Regenerates the **section 6.2 ablation studies**:
//!
//! * default: "the relative impact of various approximation strategies by
//!   running our benchmark suite with each optimization enabled in
//!   isolation" — one column per single-strategy mask. The study runs at
//!   the Medium level: that is where Table 2's probabilities are
//!   asymmetric (SRAM write failures at 10^-4.94 vs read upsets at
//!   10^-7.4), which is what the paper's qualitative claims rest on; at
//!   Aggressive every probability is 10^-3 and all strategies saturate.
//! * `--error-modes`: the three functional-unit error models compared
//!   (single bit flip / last value / random value); the paper reports
//!   ~25% QoS loss for the former two against ~40% for random-value.
//!
//! All trials of a study run as one parallel, crash-isolated campaign
//! (labels `"{level}/{strategy}"` / `"{mode}"`); reports land in
//! `results/BENCH_ablation.json` / `results/BENCH_ablation_error_modes.json`.

use std::sync::Arc;

use enerj_apps::trials::{run_campaign, run_campaign_with, TrialSpec};
use enerj_apps::{all_apps, harness, App};
use enerj_bench::cli::Options;
use enerj_bench::{err3, finish_campaign, render_table};
use enerj_hw::config::{ErrorMode, HwConfig, Level, StrategyMask};

fn main() {
    let opts = Options::parse(std::env::args(), 5);
    if opts.flags.iter().any(|f| f == "--error-modes") {
        error_modes(&opts);
    } else {
        strategy_isolation(&opts);
    }
}

/// Collects each app's fault-free reference output, in parallel.
fn references(apps: &[App], threads: usize) -> Vec<Arc<enerj_apps::qos::Output>> {
    let specs: Vec<TrialSpec> = apps.iter().map(TrialSpec::reference).collect();
    run_campaign(&specs, threads)
        .trials
        .into_iter()
        .map(|t| {
            assert!(!t.panicked(), "{}: reference run panicked", t.app);
            Arc::new(t.output.expect("reference trials keep their output"))
        })
        .collect()
}

fn strategy_isolation(opts: &Options) {
    let singles = StrategyMask::singletons();
    let apps = all_apps();
    let refs = references(&apps, opts.threads);

    let mut specs = Vec::new();
    for level in [Level::Medium, Level::Aggressive] {
        for (app, reference) in apps.iter().zip(&refs) {
            for (name, mask) in &singles {
                let cfg = HwConfig::for_level(level).with_mask(*mask);
                for i in 0..opts.runs {
                    specs.push(TrialSpec::scored(
                        app,
                        format!("{level}/{name}"),
                        cfg,
                        harness::FAULT_SEED_BASE ^ i,
                        Arc::clone(reference),
                    ));
                }
            }
        }
    }
    let report = run_campaign_with(&specs, &opts.campaign_options());

    for level in [Level::Medium, Level::Aggressive] {
        let mut rows = Vec::new();
        let mut column_sums = vec![0.0f64; singles.len()];
        for app in &apps {
            let mut row = vec![app.meta.name.to_owned()];
            for (i, (name, _)) in singles.iter().enumerate() {
                let err = report.mean_error_for(app.meta.name, &format!("{level}/{name}"));
                column_sums[i] += err;
                row.push(err3(err));
                if opts.json {
                    println!(
                        "{{\"app\":\"{}\",\"level\":\"{level}\",\"strategy\":\"{name}\",\"error\":{err:.4}}}",
                        app.meta.name
                    );
                }
            }
            rows.push(row);
        }
        if !opts.json {
            let headers: Vec<&str> =
                std::iter::once("Application").chain(singles.iter().map(|(n, _)| *n)).collect();
            println!(
                "Section 6.2 ablation: each strategy enabled in isolation ({level}, mean of {} runs)",
                opts.runs
            );
            println!();
            println!("{}", render_table(&headers, &rows));
            let n = apps.len() as f64;
            print!("Suite means:");
            for (i, (name, _)) in singles.iter().enumerate() {
                print!(" {name}={:.3}", column_sums[i] / n);
            }
            println!();
            println!();
        }
    }
    if !opts.json {
        println!("Paper's shape: DRAM nearly negligible; FP-width at most modest (<=12%,");
        println!("Aggressive); SRAM writes worse than reads (visible at Medium, where the");
        println!("probabilities are asymmetric); FU voltage scaling (timing) worst.");
    }
    finish_campaign("ablation", &report, opts);
}

fn error_modes(opts: &Options) {
    let apps = all_apps();
    let refs = references(&apps, opts.threads);

    let mut specs = Vec::new();
    for (app, reference) in apps.iter().zip(&refs) {
        for mode in ErrorMode::ALL {
            let cfg = HwConfig::for_level(Level::Medium).with_error_mode(mode);
            for i in 0..opts.runs {
                specs.push(TrialSpec::scored(
                    app,
                    mode.to_string(),
                    cfg,
                    harness::FAULT_SEED_BASE ^ i,
                    Arc::clone(reference),
                ));
            }
        }
    }
    let report = run_campaign_with(&specs, &opts.campaign_options());

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for app in &apps {
        let mut row = vec![app.meta.name.to_owned()];
        for (i, mode) in ErrorMode::ALL.iter().enumerate() {
            let err = report.mean_error_for(app.meta.name, &mode.to_string());
            sums[i] += err;
            row.push(err3(err));
            if opts.json {
                println!(
                    "{{\"app\":\"{}\",\"mode\":\"{mode}\",\"error\":{err:.4}}}",
                    app.meta.name
                );
            }
        }
        rows.push(row);
    }
    if !opts.json {
        println!(
            "Section 6.2 ablation: functional-unit error models (Medium, mean of {} runs)",
            opts.runs
        );
        println!();
        println!(
            "{}",
            render_table(&["Application", "single-bit-flip", "last-value", "random-value"], &rows)
        );
        let n = apps.len() as f64;
        println!(
            "Suite means: single-bit-flip={:.3}, last-value={:.3}, random-value={:.3}",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n
        );
        println!("Paper: random-value degrades QoS most (~40% vs ~25%); it is also the");
        println!("most realistic model and is the default everywhere else.");
    }
    finish_campaign("ablation_error_modes", &report, opts);
}
