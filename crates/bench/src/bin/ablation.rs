//! Regenerates the **section 6.2 ablation studies**:
//!
//! * default: "the relative impact of various approximation strategies by
//!   running our benchmark suite with each optimization enabled in
//!   isolation" — one column per single-strategy mask. The study runs at
//!   the Medium level: that is where Table 2's probabilities are
//!   asymmetric (SRAM write failures at 10^-4.94 vs read upsets at
//!   10^-7.4), which is what the paper's qualitative claims rest on; at
//!   Aggressive every probability is 10^-3 and all strategies saturate.
//! * `--error-modes`: the three functional-unit error models compared
//!   (single bit flip / last value / random value); the paper reports
//!   ~25% QoS loss for the former two against ~40% for random-value.

use enerj_apps::{all_apps, harness};
use enerj_apps::qos::output_error;
use enerj_bench::{err3, render_table, Options};
use enerj_hw::config::{ErrorMode, HwConfig, Level, StrategyMask};

fn main() {
    let opts = Options::parse(std::env::args(), 5);
    if opts.flags.iter().any(|f| f == "--error-modes") {
        error_modes(&opts);
    } else {
        strategy_isolation(&opts);
    }
}

/// Mean output error with a given configuration over `runs` seeds.
fn mean_error(app: &enerj_apps::App, cfg: HwConfig, runs: u64) -> f64 {
    let reference = harness::reference(app).output;
    let total: f64 = (0..runs)
        .map(|i| {
            let m = harness::measure_with(app, cfg, harness::FAULT_SEED_BASE ^ i);
            output_error(app.meta.metric, &reference, &m.output)
        })
        .sum();
    total / runs as f64
}

fn strategy_isolation(opts: &Options) {
    let singles = StrategyMask::singletons();
    let apps = all_apps();
    for level in [Level::Medium, Level::Aggressive] {
        let mut rows = Vec::new();
        let mut column_sums = vec![0.0f64; singles.len()];
        for app in &apps {
            let mut row = vec![app.meta.name.to_owned()];
            for (i, (name, mask)) in singles.iter().enumerate() {
                let cfg = HwConfig::for_level(level).with_mask(*mask);
                let err = mean_error(app, cfg, opts.runs);
                column_sums[i] += err;
                row.push(err3(err));
                if opts.json {
                    println!(
                        "{{\"app\":\"{}\",\"level\":\"{level}\",\"strategy\":\"{name}\",\"error\":{err:.4}}}",
                        app.meta.name
                    );
                }
            }
            rows.push(row);
        }
        if !opts.json {
            let headers: Vec<&str> = std::iter::once("Application")
                .chain(singles.iter().map(|(n, _)| *n))
                .collect();
            println!(
                "Section 6.2 ablation: each strategy enabled in isolation ({level}, mean of {} runs)",
                opts.runs
            );
            println!();
            println!("{}", render_table(&headers, &rows));
            let n = apps.len() as f64;
            print!("Suite means:");
            for (i, (name, _)) in singles.iter().enumerate() {
                print!(" {name}={:.3}", column_sums[i] / n);
            }
            println!();
            println!();
        }
    }
    if !opts.json {
        println!("Paper's shape: DRAM nearly negligible; FP-width at most modest (<=12%,");
        println!("Aggressive); SRAM writes worse than reads (visible at Medium, where the");
        println!("probabilities are asymmetric); FU voltage scaling (timing) worst.");
    }
}

fn error_modes(opts: &Options) {
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    let apps = all_apps();
    for app in &apps {
        let mut row = vec![app.meta.name.to_owned()];
        for (i, mode) in ErrorMode::ALL.iter().enumerate() {
            let cfg = HwConfig::for_level(Level::Medium).with_error_mode(*mode);
            let err = mean_error(app, cfg, opts.runs);
            sums[i] += err;
            row.push(err3(err));
            if opts.json {
                println!(
                    "{{\"app\":\"{}\",\"mode\":\"{mode}\",\"error\":{err:.4}}}",
                    app.meta.name
                );
            }
        }
        rows.push(row);
    }
    if !opts.json {
        println!(
            "Section 6.2 ablation: functional-unit error models (Medium, mean of {} runs)",
            opts.runs
        );
        println!();
        println!(
            "{}",
            render_table(
                &["Application", "single-bit-flip", "last-value", "random-value"],
                &rows
            )
        );
        let n = apps.len() as f64;
        println!(
            "Suite means: single-bit-flip={:.3}, last-value={:.3}, random-value={:.3}",
            sums[0] / n,
            sums[1] / n,
            sums[2] / n
        );
        println!("Paper: random-value degrades QoS most (~40% vs ~25%); it is also the");
        println!("most realistic model and is the default everywhere else.");
    }
}
