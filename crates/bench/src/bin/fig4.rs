//! Regenerates **Figure 4**: estimated CPU/memory-system energy for each
//! benchmark, normalized to fully precise execution ("B"), at the Mild,
//! Medium and Aggressive configurations.
//!
//! Energy depends on the *fractions* of approximate work and storage (one
//! run per level), not on which faults happened to be injected.

use enerj_apps::{all_apps, harness};
use enerj_bench::{render_table, Options};
use enerj_hw::config::Level;

fn main() {
    let opts = Options::parse(std::env::args(), 1);
    let mut rows = Vec::new();
    let mut savings_sum = [0.0f64; 3];
    let apps = all_apps();
    for app in &apps {
        let mut row = vec![app.meta.name.to_owned(), "1.000".to_owned()];
        for (i, level) in Level::ALL.iter().enumerate() {
            let m = harness::approximate(app, *level, 1);
            row.push(format!("{:.3}", m.energy.total));
            savings_sum[i] += m.energy.savings();
            if opts.json {
                println!(
                    "{{\"app\":\"{}\",\"level\":\"{level}\",\"energy\":{:.4},\"instr\":{:.4},\"sram\":{:.4},\"dram\":{:.4}}}",
                    app.meta.name, m.energy.total, m.energy.instructions, m.energy.sram, m.energy.dram
                );
            }
        }
        rows.push(row);
    }
    if !opts.json {
        println!("Figure 4: normalized CPU/memory system energy (B = precise baseline)");
        println!();
        println!(
            "{}",
            render_table(&["Application", "B", "1 Mild", "2 Medium", "3 Aggressive"], &rows)
        );
        let n = apps.len() as f64;
        println!(
            "Average savings: Mild {:.0}%, Medium {:.0}%, Aggressive {:.0}%  (paper: 19%, 24%, 26%)",
            100.0 * savings_sum[0] / n,
            100.0 * savings_sum[1] / n,
            100.0 * savings_sum[2] / n
        );
    }
}
