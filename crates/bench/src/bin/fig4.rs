//! Regenerates **Figure 4**: estimated CPU/memory-system energy for each
//! benchmark, normalized to fully precise execution ("B"), at the Mild,
//! Medium and Aggressive configurations.
//!
//! Energy depends on the *fractions* of approximate work and storage (one
//! run per level), not on which faults happened to be injected. The
//! `apps x levels` runs go through one parallel campaign whose report
//! lands in `results/BENCH_fig4.json`.

use enerj_apps::all_apps;
use enerj_apps::trials::{run_campaign_with, TrialSpec};
use enerj_bench::cli::Options;
use enerj_bench::{finish_campaign, render_table};
use enerj_hw::config::{HwConfig, Level};

fn main() {
    let opts = Options::parse(std::env::args(), 1);
    let apps = all_apps();
    let specs: Vec<TrialSpec> = apps
        .iter()
        .flat_map(|app| {
            Level::ALL.iter().map(move |level| TrialSpec {
                app: app.clone(),
                label: level.to_string(),
                cfg: HwConfig::for_level(*level),
                seed: 1,
                reference: None,
                keep_output: false,
                recovery: None,
                scheduled_level: None,
            })
        })
        .collect();
    let report = run_campaign_with(&specs, &opts.campaign_options());

    let mut rows = Vec::new();
    let mut savings_sum = [0.0f64; 3];
    for app in &apps {
        let mut row = vec![app.meta.name.to_owned(), "1.000".to_owned()];
        for (i, level) in Level::ALL.iter().enumerate() {
            let label = level.to_string();
            let trial = report
                .trials_for(app.meta.name, &label)
                .next()
                .expect("one trial per app and level");
            assert!(!trial.panicked(), "{}: energy run panicked", app.meta.name);
            let energy = trial.energy;
            row.push(format!("{:.3}", energy.total));
            savings_sum[i] += energy.savings();
            if opts.json {
                println!(
                    "{{\"app\":\"{}\",\"level\":\"{level}\",\"energy\":{:.4},\"instr\":{:.4},\"sram\":{:.4},\"dram\":{:.4}}}",
                    app.meta.name, energy.total, energy.instructions, energy.sram, energy.dram
                );
            }
        }
        rows.push(row);
    }
    if !opts.json {
        println!("Figure 4: normalized CPU/memory system energy (B = precise baseline)");
        println!();
        println!(
            "{}",
            render_table(&["Application", "B", "1 Mild", "2 Medium", "3 Aggressive"], &rows)
        );
        let n = apps.len() as f64;
        println!(
            "Average savings: Mild {:.0}%, Medium {:.0}%, Aggressive {:.0}%  (paper: 19%, 24%, 26%)",
            100.0 * savings_sum[0] / n,
            100.0 * savings_sum[1] / n,
            100.0 * savings_sum[2] / n
        );
    }
    finish_campaign("fig4", &report, &opts);
}
