//! Regenerates **Figure 3**: the proportion of approximate storage and
//! computation in each benchmark.
//!
//! For storage (SRAM and DRAM) the bars show the fraction of byte-seconds
//! used storing approximate data; for functional-unit operations, the
//! fraction of dynamic operations that executed approximately. These
//! fractions depend only on the annotations, so a single masked run per
//! application suffices — the nine reference runs go through one parallel
//! campaign whose report lands in `results/BENCH_fig3.json`.

use enerj_apps::all_apps;
use enerj_apps::trials::{run_campaign_with, TrialSpec};
use enerj_bench::cli::Options;
use enerj_bench::{finish_campaign, pct, render_table};
use enerj_hw::{MemKind, OpKind};

fn main() {
    let opts = Options::parse(std::env::args(), 1);
    let apps = all_apps();
    let specs: Vec<TrialSpec> = apps.iter().map(TrialSpec::reference).collect();
    let report = run_campaign_with(&specs, &opts.campaign_options());

    let mut rows = Vec::new();
    for (app, trial) in apps.iter().zip(&report.trials) {
        assert!(!trial.panicked(), "{}: reference run panicked", app.meta.name);
        let s = trial.stats;
        let dram = s.approx_storage_fraction(MemKind::Dram);
        let sram = s.approx_storage_fraction(MemKind::Sram);
        let int = s.approx_op_fraction(OpKind::Int);
        let fp = s.approx_op_fraction(OpKind::Fp);
        if opts.json {
            println!(
                "{{\"app\":\"{}\",\"dram\":{dram:.4},\"sram\":{sram:.4},\"int\":{int:.4},\"fp\":{fp:.4}}}",
                app.meta.name
            );
        }
        rows.push(vec![
            app.meta.name.to_owned(),
            pct(dram),
            pct(sram),
            pct(int),
            pct(fp),
            if s.total_ops(OpKind::Fp) == 0 { "(no FP)".into() } else { String::new() },
        ]);
    }
    if !opts.json {
        println!("Figure 3: proportion of approximate storage and computation");
        println!();
        println!(
            "{}",
            render_table(
                &["Application", "DRAM storage", "SRAM storage", "Integer ops", "FP ops", ""],
                &rows
            )
        );
        println!("Fractions are approximate byte-seconds (storage) and approximate");
        println!("dynamic operations (functional units), as in the paper.");
    }
    finish_campaign("fig3", &report, &opts);
}
