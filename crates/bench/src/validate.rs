//! Schema validation for the telemetry artifacts.
//!
//! Checks `results/BENCH_*.json` campaign reports against the
//! `enerj-campaign/4` schema and NDJSON fault logs against the fault-event
//! schema, both as documented in DESIGN.md. Used by the `validate_schema`
//! binary (and the CI smoke jobs) to catch emitter drift.

use crate::json::Json;
use enerj_hw::trace::FaultKind;

/// Top-level keys every `enerj-campaign/4` report must carry.
const REPORT_KEYS: [&str; 10] = [
    "schema",
    "threads",
    "wall_seconds",
    "mean_error",
    "panics",
    "recovered",
    "recovery_energy_overhead_quanta",
    "energy_quanta",
    "merged_stats",
    "fault_totals",
];

/// Keys every trial object must carry.
const TRIAL_KEYS: [&str; 15] = [
    "index",
    "app",
    "label",
    "seed",
    "error",
    "wall_seconds",
    "panic",
    "attempts",
    "recovered_at_level",
    "failure_causes",
    "recovery_energy_overhead",
    "recovery_energy_overhead_quanta",
    "stats",
    "energy",
    "energy_quanta",
];

/// Integer-quanta pool keys inside every `stats`/`merged_stats` object.
const STATS_QUANTA_KEYS: [&str; 4] =
    ["sram_approx_quanta", "sram_precise_quanta", "dram_approx_quanta", "dram_precise_quanta"];

/// Keys every `energy_quanta` breakdown object must carry.
const ENERGY_QUANTA_KEYS: [&str; 8] = [
    "instructions",
    "baseline_instructions",
    "sram",
    "baseline_sram",
    "dram",
    "baseline_dram",
    "total",
    "baseline_total",
];

/// Keys every NDJSON fault-log line must carry.
const EVENT_KEYS: [&str; 8] =
    ["trial", "app", "label", "seed", "time", "unit", "width", "bits_flipped"];

fn require_number(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what}: missing or non-numeric `{key}`"))
}

/// Checks that `obj[key]` is a non-negative integer energy-quanta count
/// and returns it exactly.
///
/// The parser keeps integer literals lossless ([`Json::Int`]), so this is
/// an exact 128-bit check — quanta above 2^53, where f64 rounds, are
/// compared faithfully. A fractional, negative, or absurdly large value is
/// emitter drift.
fn require_quanta(obj: &Json, key: &str, what: &str) -> Result<u128, String> {
    let v = obj.get(key).ok_or_else(|| format!("{what}: missing `{key}`"))?;
    v.as_u128().ok_or_else(|| format!("{what}: `{key}` must be a non-negative integer ({v:?})"))
}

/// Checks the four per-(memory × precision) quanta pools of a stats object.
fn validate_stats_quanta(stats: &Json, what: &str) -> Result<(), String> {
    for key in STATS_QUANTA_KEYS {
        require_quanta(stats, key, what)?;
    }
    Ok(())
}

/// Checks an `energy_quanta` breakdown: all eight fields present,
/// non-negative integers, with scaled never exceeding its baseline. The
/// comparison is exact 128-bit integer arithmetic.
fn validate_energy_quanta(quanta: &Json, what: &str) -> Result<(), String> {
    for key in ENERGY_QUANTA_KEYS {
        require_quanta(quanta, key, what)?;
    }
    for (scaled, baseline) in [
        ("instructions", "baseline_instructions"),
        ("sram", "baseline_sram"),
        ("dram", "baseline_dram"),
        ("total", "baseline_total"),
    ] {
        let s = require_quanta(quanta, scaled, what)?;
        let b = require_quanta(quanta, baseline, what)?;
        if s > b {
            return Err(format!("{what}: `{scaled}` {s} exceeds `{baseline}` {b}"));
        }
    }
    Ok(())
}

/// Checks that `counters` is a per-kind counter object: one entry per
/// [`FaultKind`], each with non-negative integer `injections` and
/// `bits_flipped`.
fn validate_counters(counters: &Json, what: &str) -> Result<(), String> {
    let fields =
        counters.as_object().ok_or_else(|| format!("{what}: counters must be an object"))?;
    if fields.len() != FaultKind::ALL.len() {
        return Err(format!(
            "{what}: expected {} fault kinds, found {}",
            FaultKind::ALL.len(),
            fields.len()
        ));
    }
    for kind in FaultKind::ALL {
        let name = kind.to_string();
        let entry = counters.get(&name).ok_or_else(|| format!("{what}: missing kind `{name}`"))?;
        for key in ["injections", "bits_flipped"] {
            require_quanta(entry, key, &format!("{what}.{name}"))?;
        }
    }
    Ok(())
}

/// Validates a parsed `enerj-campaign/4` report. Returns the trial count.
pub fn validate_campaign_report(report: &Json) -> Result<usize, String> {
    let schema =
        report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema` string")?;
    if schema != "enerj-campaign/4" {
        return Err(format!("report: schema `{schema}`, expected `enerj-campaign/4`"));
    }
    for key in REPORT_KEYS {
        if report.get(key).is_none() {
            return Err(format!("report: missing top-level `{key}`"));
        }
    }
    validate_counters(report.get("fault_totals").expect("checked above"), "fault_totals")?;
    require_quanta(report, "recovery_energy_overhead_quanta", "report")?;
    validate_stats_quanta(report.get("merged_stats").expect("checked above"), "merged_stats")?;
    validate_energy_quanta(report.get("energy_quanta").expect("checked above"), "energy_quanta")?;
    let trials =
        report.get("trials").and_then(Json::as_array).ok_or("report: `trials` must be an array")?;
    for (i, trial) in trials.iter().enumerate() {
        let what = format!("trials[{i}]");
        for key in TRIAL_KEYS {
            if trial.get(key).is_none() {
                return Err(format!("{what}: missing `{key}`"));
            }
        }
        let counts =
            trial.get("fault_counts").ok_or_else(|| format!("{what}: missing `fault_counts`"))?;
        validate_counters(counts, &format!("{what}.fault_counts"))?;
        let err = require_number(trial, "error", &what)?;
        if !(0.0..=1.0).contains(&err) {
            return Err(format!("{what}: error {err} outside [0, 1]"));
        }
        let attempts = require_number(trial, "attempts", &what)?;
        if attempts < 1.0 || attempts.fract() != 0.0 {
            return Err(format!("{what}: attempts {attempts} not a positive integer"));
        }
        let causes = trial
            .get("failure_causes")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{what}: `failure_causes` must be an array"))?;
        // N attempts can reject at most N causes (equality only when even
        // the last rung failed).
        if causes.len() as f64 > attempts {
            return Err(format!("{what}: {} failure causes for {attempts} attempts", causes.len()));
        }
        for (j, cause) in causes.iter().enumerate() {
            if cause.as_str().is_none() {
                return Err(format!("{what}: failure_causes[{j}] must be a string"));
            }
        }
        let overhead = require_number(trial, "recovery_energy_overhead", &what)?;
        if overhead < 0.0 {
            return Err(format!("{what}: negative recovery_energy_overhead {overhead}"));
        }
        require_quanta(trial, "recovery_energy_overhead_quanta", &what)?;
        let stats = trial.get("stats").expect("checked above");
        validate_stats_quanta(stats, &format!("{what}.stats"))?;
        let quanta = trial.get("energy_quanta").expect("checked above");
        validate_energy_quanta(quanta, &format!("{what}.energy_quanta"))?;
    }
    Ok(trials.len())
}

/// Keys every `enerj-hwperf/2` kernel row must carry.
const HWPERF_KERNEL_KEYS: [&str; 6] =
    ["kernel", "level", "ops", "baseline_ops_per_sec", "amortized_ops_per_sec", "speedup"];

/// Keys every `enerj-hwperf/2` batched row must carry (scalar vs
/// whole-slice entry points on the same substrate).
const HWPERF_BATCHED_KEYS: [&str; 6] =
    ["kernel", "level", "ops", "scalar_ops_per_sec", "batched_ops_per_sec", "speedup"];

/// Keys every `enerj-hwperf/2` macro row must carry.
const HWPERF_MACRO_KEYS: [&str; 4] = ["app", "level", "ops", "ops_per_sec"];

/// The microkernel names an `enerj-hwperf/2` report may contain.
const HWPERF_KERNELS: [&str; 4] = ["sram", "dram", "alu", "fpu"];

fn require_positive(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    let v = require_number(obj, key, what)?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("{what}: `{key}` must be finite and positive ({v})"));
    }
    Ok(v)
}

fn require_level(obj: &Json, what: &str) -> Result<(), String> {
    let level = obj
        .get("level")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: missing `level`"))?;
    if !["Mild", "Medium", "Aggressive"].contains(&level) {
        return Err(format!("{what}: unknown level `{level}`"));
    }
    Ok(())
}

/// Validates one speedup grid row: named keys present, every
/// throughput/speedup figure finite and positive, and the recorded speedup
/// consistent with the two rates it summarizes.
fn validate_speedup_row(
    row: &Json,
    what: &str,
    keys: &[&str],
    numerator: &str,
    denominator: &str,
) -> Result<(), String> {
    for key in keys {
        if row.get(key).is_none() {
            return Err(format!("{what}: missing `{key}`"));
        }
    }
    let kernel = row
        .get("kernel")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: `kernel` must be a string"))?;
    if !HWPERF_KERNELS.contains(&kernel) {
        return Err(format!("{what}: unknown kernel `{kernel}`"));
    }
    require_level(row, what)?;
    require_positive(row, "ops", what)?;
    let base = require_positive(row, denominator, what)?;
    let num = require_positive(row, numerator, what)?;
    let speedup = require_positive(row, "speedup", what)?;
    let implied = num / base;
    if (speedup - implied).abs() > 0.01 * implied.max(speedup) {
        return Err(format!(
            "{what}: speedup {speedup} inconsistent with {num}/{base} = {implied:.3}"
        ));
    }
    Ok(())
}

/// Validates a parsed `enerj-hwperf/2` throughput report (the `hwbench`
/// binary's output). Checks schema, key presence, and that every
/// throughput/speedup figure is finite and positive — it does *not* gate on
/// absolute speed, so the CI perf-smoke job catches emitter drift without
/// flaking on slow runners. Returns the kernel-row count (amortized plus
/// batched grids).
pub fn validate_hwperf_report(report: &Json) -> Result<usize, String> {
    let schema =
        report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema` string")?;
    if schema != "enerj-hwperf/2" {
        return Err(format!("report: schema `{schema}`, expected `enerj-hwperf/2`"));
    }
    if report.get("quick").is_none() {
        return Err("report: missing top-level `quick`".to_owned());
    }
    let kernels = report
        .get("kernels")
        .and_then(Json::as_array)
        .ok_or("report: `kernels` must be an array")?;
    if kernels.is_empty() {
        return Err("report: `kernels` is empty".to_owned());
    }
    for (i, row) in kernels.iter().enumerate() {
        let what = format!("kernels[{i}]");
        validate_speedup_row(
            row,
            &what,
            &HWPERF_KERNEL_KEYS,
            "amortized_ops_per_sec",
            "baseline_ops_per_sec",
        )?;
    }
    let batched = report
        .get("batched")
        .and_then(Json::as_array)
        .ok_or("report: `batched` must be an array")?;
    if batched.is_empty() {
        return Err("report: `batched` is empty".to_owned());
    }
    for (i, row) in batched.iter().enumerate() {
        let what = format!("batched[{i}]");
        validate_speedup_row(
            row,
            &what,
            &HWPERF_BATCHED_KEYS,
            "batched_ops_per_sec",
            "scalar_ops_per_sec",
        )?;
    }
    let macros =
        report.get("macro").and_then(Json::as_array).ok_or("report: `macro` must be an array")?;
    for (i, row) in macros.iter().enumerate() {
        let what = format!("macro[{i}]");
        for key in HWPERF_MACRO_KEYS {
            if row.get(key).is_none() {
                return Err(format!("{what}: missing `{key}`"));
            }
        }
        if row.get("app").and_then(Json::as_str).is_none() {
            return Err(format!("{what}: `app` must be a string"));
        }
        require_level(row, &what)?;
        require_positive(row, "ops", &what)?;
        require_positive(row, "ops_per_sec", &what)?;
    }
    Ok(kernels.len() + batched.len())
}

/// Keys every `enerj-campaignperf/1` engine row must carry.
const CAMPAIGNPERF_ENGINE_KEYS: [&str; 8] = [
    "threads",
    "chunk",
    "trials",
    "slot_trials_per_sec",
    "streamed_trials_per_sec",
    "speedup",
    "peak_buffered",
    "buffer_capacity",
];

/// Keys the `enerj-campaignperf/1` memory section must carry.
const CAMPAIGNPERF_MEMORY_KEYS: [&str; 8] = [
    "trials",
    "threads",
    "chunk",
    "trials_per_sec",
    "ndjson_bytes",
    "peak_buffered",
    "buffer_capacity",
    "vm_hwm_kb",
];

fn require_bounded_window(row: &Json, what: &str) -> Result<(), String> {
    let peak = require_number(row, "peak_buffered", what)?;
    let capacity = require_positive(row, "buffer_capacity", what)?;
    if peak < 0.0 || peak.fract() != 0.0 {
        return Err(format!("{what}: `peak_buffered` must be a non-negative integer ({peak})"));
    }
    if peak > capacity {
        return Err(format!(
            "{what}: peak_buffered {peak} exceeds buffer_capacity {capacity} — \
             the reorder window is not bounded"
        ));
    }
    Ok(())
}

/// Validates a parsed `enerj-campaignperf/1` throughput report (the
/// `campaign_bench` binary's output). Checks schema, the engine
/// bit-identity verdict, that the reorder window stayed within its
/// capacity everywhere, and that every rate and speedup is finite,
/// positive, and self-consistent — it does *not* gate on absolute speed,
/// so the CI campaign-smoke job catches emitter drift without flaking on
/// slow runners. Returns the engine-grid row count.
pub fn validate_campaignperf_report(report: &Json) -> Result<usize, String> {
    let schema =
        report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema` string")?;
    if schema != "enerj-campaignperf/1" {
        return Err(format!("report: schema `{schema}`, expected `enerj-campaignperf/1`"));
    }
    if report.get("quick").is_none() {
        return Err("report: missing top-level `quick`".to_owned());
    }
    match report.get("identical") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            return Err("report: `identical` is false — the engines disagreed".to_owned())
        }
        _ => return Err("report: missing boolean `identical`".to_owned()),
    }
    let memory = report.get("memory").ok_or("report: missing `memory` object")?;
    for key in CAMPAIGNPERF_MEMORY_KEYS {
        if memory.get(key).is_none() {
            return Err(format!("memory: missing `{key}`"));
        }
    }
    require_positive(memory, "trials", "memory")?;
    require_positive(memory, "threads", "memory")?;
    require_positive(memory, "chunk", "memory")?;
    require_positive(memory, "trials_per_sec", "memory")?;
    require_positive(memory, "ndjson_bytes", "memory")?;
    require_bounded_window(memory, "memory")?;
    let hwm = require_number(memory, "vm_hwm_kb", "memory")?;
    if hwm < 0.0 {
        return Err(format!("memory: negative vm_hwm_kb {hwm}"));
    }
    let engine =
        report.get("engine").and_then(Json::as_array).ok_or("report: `engine` must be an array")?;
    if engine.is_empty() {
        return Err("report: `engine` is empty".to_owned());
    }
    for (i, row) in engine.iter().enumerate() {
        let what = format!("engine[{i}]");
        for key in CAMPAIGNPERF_ENGINE_KEYS {
            if row.get(key).is_none() {
                return Err(format!("{what}: missing `{key}`"));
            }
        }
        require_positive(row, "threads", &what)?;
        require_positive(row, "chunk", &what)?;
        require_positive(row, "trials", &what)?;
        let slot = require_positive(row, "slot_trials_per_sec", &what)?;
        let streamed = require_positive(row, "streamed_trials_per_sec", &what)?;
        let speedup = require_positive(row, "speedup", &what)?;
        let implied = streamed / slot;
        if (speedup - implied).abs() > 0.01 * implied.max(speedup) {
            return Err(format!(
                "{what}: speedup {speedup} inconsistent with {streamed}/{slot} = {implied:.3}"
            ));
        }
        require_bounded_window(row, &what)?;
    }
    Ok(engine.len())
}

/// Validates one NDJSON fault-log line (already parsed).
pub fn validate_fault_event(event: &Json, what: &str) -> Result<(), String> {
    for key in EVENT_KEYS {
        if event.get(key).is_none() {
            return Err(format!("{what}: missing `{key}`"));
        }
    }
    let unit = event
        .get("unit")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: `unit` must be a string"))?;
    if FaultKind::from_name(unit).is_none() {
        return Err(format!("{what}: unknown unit `{unit}`"));
    }
    let width = require_number(event, "width", what)?;
    if !(1.0..=64.0).contains(&width) || width.fract() != 0.0 {
        return Err(format!("{what}: width {width} not an integer in 1..=64"));
    }
    let bits = require_number(event, "bits_flipped", what)?;
    if bits < 0.0 || bits > width || bits.fract() != 0.0 {
        return Err(format!("{what}: bits_flipped {bits} not an integer in 0..=width"));
    }
    let time = require_number(event, "time", what)?;
    if time < 0.0 {
        return Err(format!("{what}: negative time {time}"));
    }
    Ok(())
}

/// Validates a whole NDJSON fault log. Returns the event count. An empty
/// log (no lines) is valid — campaigns that inject no faults emit one.
pub fn validate_fault_log(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let what = format!("line {}", lineno + 1);
        let event = Json::parse(line).map_err(|e| format!("{what}: {e}"))?;
        validate_fault_event(&event, &what)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_apps::trials::{run_campaign_with, CampaignOptions, TrialSpec};
    use enerj_hw::config::{HwConfig, Level};
    use std::sync::Arc;

    fn aggressive_campaign() -> enerj_apps::trials::CampaignReport {
        let app = enerj_apps::all_apps().remove(2); // MonteCarlo
        let reference = Arc::new(enerj_apps::harness::reference(&app).output);
        let specs: Vec<TrialSpec> = (0..3)
            .map(|i| {
                TrialSpec::scored(
                    &app,
                    "Aggressive",
                    HwConfig::for_level(Level::Aggressive),
                    enerj_apps::harness::FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
            })
            .collect();
        let opts = CampaignOptions { threads: 1, log_events: true, ..CampaignOptions::default() };
        run_campaign_with(&specs, &opts)
    }

    #[test]
    fn real_report_and_log_validate() {
        let report = aggressive_campaign();
        let parsed = Json::parse(&report.to_json()).unwrap();
        assert_eq!(validate_campaign_report(&parsed), Ok(3));
        let events = validate_fault_log(&report.fault_log_ndjson()).unwrap();
        assert_eq!(events as u64, report.fault_totals().total_injections());
    }

    #[test]
    fn rejects_wrong_schema_and_missing_keys() {
        for old in ["enerj-campaign/1", "enerj-campaign/2", "enerj-campaign/3"] {
            let v = Json::parse(&format!(r#"{{"schema":"{old}"}}"#)).unwrap();
            assert!(validate_campaign_report(&v).unwrap_err().contains("schema"));
        }
        let v = Json::parse(r#"{"schema":"enerj-campaign/4","threads":1}"#).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("missing top-level"));
    }

    #[test]
    fn rejects_malformed_recovery_fields() {
        let good = aggressive_campaign().to_json();
        let zero_attempts = good.replace("\"attempts\":1", "\"attempts\":0");
        let v = Json::parse(&zero_attempts).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("attempts"));
        let too_many_causes =
            good.replace("\"failure_causes\":[]", "\"failure_causes\":[\"qos: a\",\"qos: b\"]");
        let v = Json::parse(&too_many_causes).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("failure causes"));
        let negative_overhead =
            good.replace("\"recovery_energy_overhead\":0,", "\"recovery_energy_overhead\":-0.5,");
        let v = Json::parse(&negative_overhead).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("recovery_energy_overhead"));
    }

    #[test]
    fn rejects_malformed_quanta_fields() {
        let good = aggressive_campaign().to_json();
        // Fractional quanta: energy is an integer count, not a float.
        let fractional = good.replacen("\"baseline_total\":", "\"baseline_total\":0.5,\"_x\":", 1);
        let v = Json::parse(&fractional).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("non-negative integer"));
        // Negative overhead quanta.
        let negative = good.replacen(
            "\"recovery_energy_overhead_quanta\":",
            "\"recovery_energy_overhead_quanta\":-1,\"_x\":",
            1,
        );
        let v = Json::parse(&negative).unwrap();
        assert!(validate_campaign_report(&v)
            .unwrap_err()
            .contains("recovery_energy_overhead_quanta"));
        // Scaled energy above its own baseline is an accounting bug.
        let inverted =
            good.replacen("\"baseline_instructions\":", "\"baseline_instructions\":0,\"_x\":", 1);
        let v = Json::parse(&inverted).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn recovery_campaign_report_validates() {
        use enerj_apps::recovery::{chaos_config, Policy};
        let app = enerj_apps::all_apps().remove(2); // MonteCarlo
        let reference = Arc::new(enerj_apps::harness::reference(&app).output);
        let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
        let specs: Vec<TrialSpec> = (0..3)
            .map(|i| {
                TrialSpec::scored(
                    &app,
                    "chaos",
                    chaos_config(50.0),
                    enerj_apps::harness::FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
                .with_recovery(policy.clone())
            })
            .collect();
        let report = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
        assert!(report.recovered_count() > 0, "threshold 0 under chaos must escalate");
        let parsed = Json::parse(&report.to_json()).unwrap();
        assert_eq!(validate_campaign_report(&parsed), Ok(3));
    }

    const HWPERF_OK: &str = r#"{
        "schema": "enerj-hwperf/2",
        "quick": true,
        "kernels": [
            {"kernel": "sram", "level": "Mild", "ops": 400000,
             "baseline_ops_per_sec": 50000000.0,
             "amortized_ops_per_sec": 1500000000.0, "speedup": 30.0}
        ],
        "batched": [
            {"kernel": "alu", "level": "Mild", "ops": 397312,
             "scalar_ops_per_sec": 100000000.0,
             "batched_ops_per_sec": 600000000.0, "speedup": 6.0}
        ],
        "macro": [
            {"app": "FFT", "level": "Aggressive", "ops": 24576,
             "ops_per_sec": 40000000.0}
        ]
    }"#;

    #[test]
    fn hwperf_report_validates() {
        let v = Json::parse(HWPERF_OK).unwrap();
        assert_eq!(validate_hwperf_report(&v), Ok(2));
    }

    #[test]
    fn hwperf_rejects_drifted_reports() {
        let wrong_schema = HWPERF_OK.replace("enerj-hwperf/2", "enerj-hwperf/1");
        let v = Json::parse(&wrong_schema).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("schema"));

        let no_kernels = HWPERF_OK.replace("\"kernel\": \"sram\"", "\"unit\": \"sram\"");
        let v = Json::parse(&no_kernels).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("kernel"));

        let bad_level = HWPERF_OK.replacen("\"Mild\"", "\"Extreme\"", 1);
        let v = Json::parse(&bad_level).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("unknown level"));

        let zero_rate = HWPERF_OK
            .replace("\"baseline_ops_per_sec\": 50000000.0", "\"baseline_ops_per_sec\": 0.0");
        let v = Json::parse(&zero_rate).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("positive"));

        let wrong_speedup = HWPERF_OK.replace("\"speedup\": 30.0", "\"speedup\": 2.0");
        let v = Json::parse(&wrong_speedup).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn hwperf_rejects_bad_batched_rows() {
        // `/2` reports must carry the batched grid at all.
        let missing = HWPERF_OK.replace("\"batched\"", "\"sliced\"");
        let v = Json::parse(&missing).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("batched"));

        // A serialized `inf` (the unclamped `--quick` denominator bug)
        // parses as a malformed number and must be rejected, as must a
        // literal non-finite-looking huge value drifting in.
        let inf_rate = HWPERF_OK
            .replace("\"batched_ops_per_sec\": 600000000.0", "\"batched_ops_per_sec\": -1.0");
        let v = Json::parse(&inf_rate).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("positive"));

        let wrong_speedup = HWPERF_OK.replace("\"speedup\": 6.0", "\"speedup\": 60.0");
        let v = Json::parse(&wrong_speedup).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("inconsistent"));
    }

    const CAMPAIGNPERF_OK: &str = r#"{
        "schema": "enerj-campaignperf/1",
        "quick": true,
        "identical": true,
        "memory": {
            "trials": 50000, "threads": 2, "chunk": 64,
            "trials_per_sec": 120000.0, "ndjson_bytes": 48000000,
            "peak_buffered": 250, "buffer_capacity": 256, "vm_hwm_kb": 2900
        },
        "engine": [
            {"threads": 2, "chunk": 16, "trials": 2000,
             "slot_trials_per_sec": 50000.0, "streamed_trials_per_sec": 600000.0,
             "speedup": 12.0, "peak_buffered": 64, "buffer_capacity": 64}
        ]
    }"#;

    #[test]
    fn campaignperf_report_validates() {
        let v = Json::parse(CAMPAIGNPERF_OK).unwrap();
        assert_eq!(validate_campaignperf_report(&v), Ok(1));
    }

    #[test]
    fn campaignperf_rejects_drifted_reports() {
        let wrong_schema = CAMPAIGNPERF_OK.replace("campaignperf/1", "campaignperf/0");
        let v = Json::parse(&wrong_schema).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("schema"));

        let not_identical = CAMPAIGNPERF_OK.replace("\"identical\": true", "\"identical\": false");
        let v = Json::parse(&not_identical).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("disagreed"));

        let wrong_speedup = CAMPAIGNPERF_OK.replace("\"speedup\": 12.0", "\"speedup\": 3.0");
        let v = Json::parse(&wrong_speedup).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("inconsistent"));

        let zero_rate = CAMPAIGNPERF_OK
            .replace("\"slot_trials_per_sec\": 50000.0", "\"slot_trials_per_sec\": 0.0");
        let v = Json::parse(&zero_rate).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("positive"));

        let no_engine = CAMPAIGNPERF_OK.replace("\"engine\"", "\"grid\"");
        let v = Json::parse(&no_engine).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("engine"));
    }

    #[test]
    fn campaignperf_rejects_unbounded_windows() {
        // A peak above capacity means the reorder window leaked — the
        // bounded-memory claim would be false.
        let overflow = CAMPAIGNPERF_OK.replace("\"peak_buffered\": 250", "\"peak_buffered\": 300");
        let v = Json::parse(&overflow).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("not bounded"));
    }

    #[test]
    fn campaignperf_accepts_real_bench_output() {
        // Shape-check the committed capture, when present.
        let path = crate::bench_report_path("campaignperf");
        if let Ok(text) = std::fs::read_to_string(path) {
            let v = Json::parse(&text).unwrap();
            assert!(validate_campaignperf_report(&v).unwrap() >= 1);
        }
    }

    #[test]
    fn rejects_bad_fault_log_lines() {
        assert!(validate_fault_log("not json\n").is_err());
        let missing = r#"{"trial":0,"app":"X","label":"L","seed":1,"time":0.0,"unit":"int-timing","width":64}"#;
        assert!(validate_fault_log(missing).unwrap_err().contains("bits_flipped"));
        let bad_unit = r#"{"trial":0,"app":"X","label":"L","seed":1,"time":0.0,"unit":"warp-core","width":64,"bits_flipped":1}"#;
        assert!(validate_fault_log(bad_unit).unwrap_err().contains("unknown unit"));
        let bits_over_width = r#"{"trial":0,"app":"X","label":"L","seed":1,"time":0.0,"unit":"int-timing","width":8,"bits_flipped":9}"#;
        assert!(validate_fault_log(bits_over_width).is_err());
        assert_eq!(validate_fault_log(""), Ok(0));
    }
}
