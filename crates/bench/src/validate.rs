//! Schema validation for the telemetry artifacts.
//!
//! Checks `results/BENCH_*.json` campaign reports against the
//! `enerj-campaign/5` schema, `enerj-sched/1` budget-scheduling reports,
//! and NDJSON fault logs against the fault-event schema, all as documented
//! in DESIGN.md. Used by the `validate_schema` binary (and the CI smoke
//! jobs) to catch emitter drift.

use crate::json::Json;
use enerj_hw::trace::FaultKind;

/// Top-level keys every `enerj-campaign/5` report must carry.
const REPORT_KEYS: [&str; 12] = [
    "schema",
    "threads",
    "wall_seconds",
    "mean_error",
    "panics",
    "recovered",
    "budget_quanta",
    "budget_met",
    "recovery_energy_overhead_quanta",
    "energy_quanta",
    "merged_stats",
    "fault_totals",
];

/// Keys every trial object must carry.
const TRIAL_KEYS: [&str; 16] = [
    "index",
    "app",
    "label",
    "seed",
    "error",
    "wall_seconds",
    "panic",
    "attempts",
    "recovered_at_level",
    "scheduled_level",
    "failure_causes",
    "recovery_energy_overhead",
    "recovery_energy_overhead_quanta",
    "stats",
    "energy",
    "energy_quanta",
];

/// Integer-quanta pool keys inside every `stats`/`merged_stats` object.
const STATS_QUANTA_KEYS: [&str; 4] =
    ["sram_approx_quanta", "sram_precise_quanta", "dram_approx_quanta", "dram_precise_quanta"];

/// Keys every `energy_quanta` breakdown object must carry.
const ENERGY_QUANTA_KEYS: [&str; 8] = [
    "instructions",
    "baseline_instructions",
    "sram",
    "baseline_sram",
    "dram",
    "baseline_dram",
    "total",
    "baseline_total",
];

/// Keys every NDJSON fault-log line must carry.
const EVENT_KEYS: [&str; 8] =
    ["trial", "app", "label", "seed", "time", "unit", "width", "bits_flipped"];

fn require_number(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{what}: missing or non-numeric `{key}`"))
}

/// Checks that `obj[key]` is a non-negative integer energy-quanta count
/// and returns it exactly.
///
/// The parser keeps integer literals lossless ([`Json::Int`]), so this is
/// an exact 128-bit check — quanta above 2^53, where f64 rounds, are
/// compared faithfully. A fractional, negative, or absurdly large value is
/// emitter drift.
fn require_quanta(obj: &Json, key: &str, what: &str) -> Result<u128, String> {
    let v = obj.get(key).ok_or_else(|| format!("{what}: missing `{key}`"))?;
    v.as_u128().ok_or_else(|| format!("{what}: `{key}` must be a non-negative integer ({v:?})"))
}

/// Checks the four per-(memory × precision) quanta pools of a stats object.
fn validate_stats_quanta(stats: &Json, what: &str) -> Result<(), String> {
    for key in STATS_QUANTA_KEYS {
        require_quanta(stats, key, what)?;
    }
    Ok(())
}

/// Checks an `energy_quanta` breakdown: all eight fields present,
/// non-negative integers, with scaled never exceeding its baseline. The
/// comparison is exact 128-bit integer arithmetic.
fn validate_energy_quanta(quanta: &Json, what: &str) -> Result<(), String> {
    for key in ENERGY_QUANTA_KEYS {
        require_quanta(quanta, key, what)?;
    }
    for (scaled, baseline) in [
        ("instructions", "baseline_instructions"),
        ("sram", "baseline_sram"),
        ("dram", "baseline_dram"),
        ("total", "baseline_total"),
    ] {
        let s = require_quanta(quanta, scaled, what)?;
        let b = require_quanta(quanta, baseline, what)?;
        if s > b {
            return Err(format!("{what}: `{scaled}` {s} exceeds `{baseline}` {b}"));
        }
    }
    Ok(())
}

/// Checks that `counters` is a per-kind counter object: one entry per
/// [`FaultKind`], each with non-negative integer `injections` and
/// `bits_flipped`.
fn validate_counters(counters: &Json, what: &str) -> Result<(), String> {
    let fields =
        counters.as_object().ok_or_else(|| format!("{what}: counters must be an object"))?;
    if fields.len() != FaultKind::ALL.len() {
        return Err(format!(
            "{what}: expected {} fault kinds, found {}",
            FaultKind::ALL.len(),
            fields.len()
        ));
    }
    for kind in FaultKind::ALL {
        let name = kind.to_string();
        let entry = counters.get(&name).ok_or_else(|| format!("{what}: missing kind `{name}`"))?;
        for key in ["injections", "bits_flipped"] {
            require_quanta(entry, key, &format!("{what}.{name}"))?;
        }
    }
    Ok(())
}

/// The scheduler's precision-level vocabulary: the only strings a
/// `scheduled_level` field (or an `enerj-sched/1` level) may carry.
const SCHED_LEVELS: [&str; 4] = ["Precise", "Mild", "Medium", "Aggressive"];

/// Checks an optional scheduler field: `null` (unscheduled campaigns) or a
/// value `check` accepts.
fn require_nullable(
    obj: &Json,
    key: &str,
    what: &str,
    check: impl FnOnce(&Json) -> Result<(), String>,
) -> Result<(), String> {
    match obj.get(key) {
        None => Err(format!("{what}: missing `{key}`")),
        Some(Json::Null) => Ok(()),
        Some(v) => check(v),
    }
}

/// Validates a parsed `enerj-campaign/5` report. Returns the trial count.
pub fn validate_campaign_report(report: &Json) -> Result<usize, String> {
    let schema =
        report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema` string")?;
    if schema != "enerj-campaign/5" {
        return Err(format!("report: schema `{schema}`, expected `enerj-campaign/5`"));
    }
    for key in REPORT_KEYS {
        if report.get(key).is_none() {
            return Err(format!("report: missing top-level `{key}`"));
        }
    }
    validate_counters(report.get("fault_totals").expect("checked above"), "fault_totals")?;
    require_quanta(report, "recovery_energy_overhead_quanta", "report")?;
    require_nullable(report, "budget_quanta", "report", |v| {
        v.as_u128().map(drop).ok_or_else(|| {
            format!("report: `budget_quanta` must be null or a non-negative integer ({v:?})")
        })
    })?;
    require_nullable(report, "budget_met", "report", |v| match v {
        Json::Bool(_) => Ok(()),
        other => Err(format!("report: `budget_met` must be null or a boolean ({other:?})")),
    })?;
    // A budget verdict without a budget (or vice versa) is emitter drift.
    let has_budget = !matches!(report.get("budget_quanta"), Some(Json::Null));
    let has_verdict = !matches!(report.get("budget_met"), Some(Json::Null));
    if has_budget != has_verdict {
        return Err("report: `budget_quanta` and `budget_met` must be null together".to_owned());
    }
    validate_stats_quanta(report.get("merged_stats").expect("checked above"), "merged_stats")?;
    validate_energy_quanta(report.get("energy_quanta").expect("checked above"), "energy_quanta")?;
    let trials =
        report.get("trials").and_then(Json::as_array).ok_or("report: `trials` must be an array")?;
    for (i, trial) in trials.iter().enumerate() {
        let what = format!("trials[{i}]");
        for key in TRIAL_KEYS {
            if trial.get(key).is_none() {
                return Err(format!("{what}: missing `{key}`"));
            }
        }
        let counts =
            trial.get("fault_counts").ok_or_else(|| format!("{what}: missing `fault_counts`"))?;
        validate_counters(counts, &format!("{what}.fault_counts"))?;
        let err = require_number(trial, "error", &what)?;
        if !(0.0..=1.0).contains(&err) {
            return Err(format!("{what}: error {err} outside [0, 1]"));
        }
        let attempts = require_number(trial, "attempts", &what)?;
        if attempts < 1.0 || attempts.fract() != 0.0 {
            return Err(format!("{what}: attempts {attempts} not a positive integer"));
        }
        let causes = trial
            .get("failure_causes")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{what}: `failure_causes` must be an array"))?;
        // N attempts can reject at most N causes (equality only when even
        // the last rung failed).
        if causes.len() as f64 > attempts {
            return Err(format!("{what}: {} failure causes for {attempts} attempts", causes.len()));
        }
        for (j, cause) in causes.iter().enumerate() {
            if cause.as_str().is_none() {
                return Err(format!("{what}: failure_causes[{j}] must be a string"));
            }
        }
        require_nullable(trial, "scheduled_level", &what, |v| match v.as_str() {
            Some(level) if SCHED_LEVELS.contains(&level) => Ok(()),
            Some(level) => Err(format!("{what}: unknown scheduled_level `{level}`")),
            None => Err(format!("{what}: `scheduled_level` must be null or a string")),
        })?;
        let overhead = require_number(trial, "recovery_energy_overhead", &what)?;
        if overhead < 0.0 {
            return Err(format!("{what}: negative recovery_energy_overhead {overhead}"));
        }
        require_quanta(trial, "recovery_energy_overhead_quanta", &what)?;
        let stats = trial.get("stats").expect("checked above");
        validate_stats_quanta(stats, &format!("{what}.stats"))?;
        let quanta = trial.get("energy_quanta").expect("checked above");
        validate_energy_quanta(quanta, &format!("{what}.energy_quanta"))?;
    }
    Ok(trials.len())
}

/// Keys every `enerj-hwperf/2` kernel row must carry.
const HWPERF_KERNEL_KEYS: [&str; 6] =
    ["kernel", "level", "ops", "baseline_ops_per_sec", "amortized_ops_per_sec", "speedup"];

/// Keys every `enerj-hwperf/2` batched row must carry (scalar vs
/// whole-slice entry points on the same substrate).
const HWPERF_BATCHED_KEYS: [&str; 6] =
    ["kernel", "level", "ops", "scalar_ops_per_sec", "batched_ops_per_sec", "speedup"];

/// Keys every `enerj-hwperf/2` macro row must carry.
const HWPERF_MACRO_KEYS: [&str; 4] = ["app", "level", "ops", "ops_per_sec"];

/// The microkernel names an `enerj-hwperf/2` report may contain.
const HWPERF_KERNELS: [&str; 4] = ["sram", "dram", "alu", "fpu"];

fn require_positive(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    let v = require_number(obj, key, what)?;
    if !v.is_finite() || v <= 0.0 {
        return Err(format!("{what}: `{key}` must be finite and positive ({v})"));
    }
    Ok(v)
}

fn require_level(obj: &Json, what: &str) -> Result<(), String> {
    let level = obj
        .get("level")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: missing `level`"))?;
    if !["Mild", "Medium", "Aggressive"].contains(&level) {
        return Err(format!("{what}: unknown level `{level}`"));
    }
    Ok(())
}

/// Validates one speedup grid row: named keys present, every
/// throughput/speedup figure finite and positive, and the recorded speedup
/// consistent with the two rates it summarizes.
fn validate_speedup_row(
    row: &Json,
    what: &str,
    keys: &[&str],
    numerator: &str,
    denominator: &str,
) -> Result<(), String> {
    for key in keys {
        if row.get(key).is_none() {
            return Err(format!("{what}: missing `{key}`"));
        }
    }
    let kernel = row
        .get("kernel")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: `kernel` must be a string"))?;
    if !HWPERF_KERNELS.contains(&kernel) {
        return Err(format!("{what}: unknown kernel `{kernel}`"));
    }
    require_level(row, what)?;
    require_positive(row, "ops", what)?;
    let base = require_positive(row, denominator, what)?;
    let num = require_positive(row, numerator, what)?;
    let speedup = require_positive(row, "speedup", what)?;
    let implied = num / base;
    if (speedup - implied).abs() > 0.01 * implied.max(speedup) {
        return Err(format!(
            "{what}: speedup {speedup} inconsistent with {num}/{base} = {implied:.3}"
        ));
    }
    Ok(())
}

/// Validates a parsed `enerj-hwperf/2` throughput report (the `hwbench`
/// binary's output). Checks schema, key presence, and that every
/// throughput/speedup figure is finite and positive — it does *not* gate on
/// absolute speed, so the CI perf-smoke job catches emitter drift without
/// flaking on slow runners. Returns the kernel-row count (amortized plus
/// batched grids).
pub fn validate_hwperf_report(report: &Json) -> Result<usize, String> {
    let schema =
        report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema` string")?;
    if schema != "enerj-hwperf/2" {
        return Err(format!("report: schema `{schema}`, expected `enerj-hwperf/2`"));
    }
    if report.get("quick").is_none() {
        return Err("report: missing top-level `quick`".to_owned());
    }
    let kernels = report
        .get("kernels")
        .and_then(Json::as_array)
        .ok_or("report: `kernels` must be an array")?;
    if kernels.is_empty() {
        return Err("report: `kernels` is empty".to_owned());
    }
    for (i, row) in kernels.iter().enumerate() {
        let what = format!("kernels[{i}]");
        validate_speedup_row(
            row,
            &what,
            &HWPERF_KERNEL_KEYS,
            "amortized_ops_per_sec",
            "baseline_ops_per_sec",
        )?;
    }
    let batched = report
        .get("batched")
        .and_then(Json::as_array)
        .ok_or("report: `batched` must be an array")?;
    if batched.is_empty() {
        return Err("report: `batched` is empty".to_owned());
    }
    for (i, row) in batched.iter().enumerate() {
        let what = format!("batched[{i}]");
        validate_speedup_row(
            row,
            &what,
            &HWPERF_BATCHED_KEYS,
            "batched_ops_per_sec",
            "scalar_ops_per_sec",
        )?;
    }
    let macros =
        report.get("macro").and_then(Json::as_array).ok_or("report: `macro` must be an array")?;
    for (i, row) in macros.iter().enumerate() {
        let what = format!("macro[{i}]");
        for key in HWPERF_MACRO_KEYS {
            if row.get(key).is_none() {
                return Err(format!("{what}: missing `{key}`"));
            }
        }
        if row.get("app").and_then(Json::as_str).is_none() {
            return Err(format!("{what}: `app` must be a string"));
        }
        require_level(row, &what)?;
        require_positive(row, "ops", &what)?;
        require_positive(row, "ops_per_sec", &what)?;
    }
    Ok(kernels.len() + batched.len())
}

/// Keys every `enerj-campaignperf/1` engine row must carry.
const CAMPAIGNPERF_ENGINE_KEYS: [&str; 8] = [
    "threads",
    "chunk",
    "trials",
    "slot_trials_per_sec",
    "streamed_trials_per_sec",
    "speedup",
    "peak_buffered",
    "buffer_capacity",
];

/// Keys the `enerj-campaignperf/1` memory section must carry.
const CAMPAIGNPERF_MEMORY_KEYS: [&str; 8] = [
    "trials",
    "threads",
    "chunk",
    "trials_per_sec",
    "ndjson_bytes",
    "peak_buffered",
    "buffer_capacity",
    "vm_hwm_kb",
];

fn require_bounded_window(row: &Json, what: &str) -> Result<(), String> {
    let peak = require_number(row, "peak_buffered", what)?;
    let capacity = require_positive(row, "buffer_capacity", what)?;
    if peak < 0.0 || peak.fract() != 0.0 {
        return Err(format!("{what}: `peak_buffered` must be a non-negative integer ({peak})"));
    }
    if peak > capacity {
        return Err(format!(
            "{what}: peak_buffered {peak} exceeds buffer_capacity {capacity} — \
             the reorder window is not bounded"
        ));
    }
    Ok(())
}

/// Validates a parsed `enerj-campaignperf/1` throughput report (the
/// `campaign_bench` binary's output). Checks schema, the engine
/// bit-identity verdict, that the reorder window stayed within its
/// capacity everywhere, and that every rate and speedup is finite,
/// positive, and self-consistent — it does *not* gate on absolute speed,
/// so the CI campaign-smoke job catches emitter drift without flaking on
/// slow runners. Returns the engine-grid row count.
pub fn validate_campaignperf_report(report: &Json) -> Result<usize, String> {
    let schema =
        report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema` string")?;
    if schema != "enerj-campaignperf/1" {
        return Err(format!("report: schema `{schema}`, expected `enerj-campaignperf/1`"));
    }
    if report.get("quick").is_none() {
        return Err("report: missing top-level `quick`".to_owned());
    }
    match report.get("identical") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            return Err("report: `identical` is false — the engines disagreed".to_owned())
        }
        _ => return Err("report: missing boolean `identical`".to_owned()),
    }
    let memory = report.get("memory").ok_or("report: missing `memory` object")?;
    for key in CAMPAIGNPERF_MEMORY_KEYS {
        if memory.get(key).is_none() {
            return Err(format!("memory: missing `{key}`"));
        }
    }
    require_positive(memory, "trials", "memory")?;
    require_positive(memory, "threads", "memory")?;
    require_positive(memory, "chunk", "memory")?;
    require_positive(memory, "trials_per_sec", "memory")?;
    require_positive(memory, "ndjson_bytes", "memory")?;
    require_bounded_window(memory, "memory")?;
    let hwm = require_number(memory, "vm_hwm_kb", "memory")?;
    if hwm < 0.0 {
        return Err(format!("memory: negative vm_hwm_kb {hwm}"));
    }
    let engine =
        report.get("engine").and_then(Json::as_array).ok_or("report: `engine` must be an array")?;
    if engine.is_empty() {
        return Err("report: `engine` is empty".to_owned());
    }
    for (i, row) in engine.iter().enumerate() {
        let what = format!("engine[{i}]");
        for key in CAMPAIGNPERF_ENGINE_KEYS {
            if row.get(key).is_none() {
                return Err(format!("{what}: missing `{key}`"));
            }
        }
        require_positive(row, "threads", &what)?;
        require_positive(row, "chunk", &what)?;
        require_positive(row, "trials", &what)?;
        let slot = require_positive(row, "slot_trials_per_sec", &what)?;
        let streamed = require_positive(row, "streamed_trials_per_sec", &what)?;
        let speedup = require_positive(row, "speedup", &what)?;
        let implied = streamed / slot;
        if (speedup - implied).abs() > 0.01 * implied.max(speedup) {
            return Err(format!(
                "{what}: speedup {speedup} inconsistent with {streamed}/{slot} = {implied:.3}"
            ));
        }
        require_bounded_window(row, &what)?;
    }
    Ok(engine.len())
}

/// Top-level keys every `enerj-sched/1` report must carry.
const SCHED_REPORT_KEYS: [&str; 10] = [
    "schema",
    "quick",
    "meter",
    "budget_pct",
    "trials",
    "epoch_len",
    "precise_cost_quanta",
    "budget_quanta",
    "identical",
    "scheduled",
];

/// Keys the `enerj-sched/1` scheduled section must carry.
const SCHED_SCHEDULED_KEYS: [&str; 6] =
    ["spent_quanta", "budget_met", "mean_error", "qos", "implausible", "level_counts"];

/// Keys every `enerj-sched/1` baseline row must carry.
const SCHED_BASELINE_KEYS: [&str; 5] =
    ["level", "spent_quanta", "mean_error", "qos", "fits_budget"];

fn require_error_and_qos(obj: &Json, what: &str) -> Result<(), String> {
    let err = require_number(obj, "mean_error", what)?;
    if !(0.0..=1.0).contains(&err) {
        return Err(format!("{what}: mean_error {err} outside [0, 1]"));
    }
    let qos = require_number(obj, "qos", what)?;
    if !(0.0..=1.0).contains(&qos) {
        return Err(format!("{what}: qos {qos} outside [0, 1]"));
    }
    if (qos - (1.0 - err)).abs() > 1e-9 {
        return Err(format!("{what}: qos {qos} inconsistent with mean_error {err}"));
    }
    Ok(())
}

/// Validates a parsed `enerj-sched/1` budget-scheduling report (the
/// `schedbench` binary's output). Checks schema, the binary's own
/// bit-identity verdict, exact integer-quanta budget arithmetic (the
/// recorded verdict must equal `spent <= budget`), the scheduled level
/// census, and every static baseline row — it does *not* gate on absolute
/// QoS, so the CI sched-smoke job catches emitter drift without pinning
/// workload-dependent numbers. Returns the baseline-row count.
pub fn validate_sched_report(report: &Json) -> Result<usize, String> {
    let schema =
        report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema` string")?;
    if schema != "enerj-sched/1" {
        return Err(format!("report: schema `{schema}`, expected `enerj-sched/1`"));
    }
    for key in SCHED_REPORT_KEYS {
        if report.get(key).is_none() {
            return Err(format!("report: missing top-level `{key}`"));
        }
    }
    let meter =
        report.get("meter").and_then(Json::as_str).ok_or("report: `meter` must be a string")?;
    if !["total", "sram"].contains(&meter) {
        return Err(format!("report: unknown meter `{meter}`"));
    }
    match report.get("identical") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            return Err(
                "report: `identical` is false — scheduled campaigns diverged across thread counts"
                    .to_owned(),
            )
        }
        _ => return Err("report: missing boolean `identical`".to_owned()),
    }
    let trials = require_quanta(report, "trials", "report")?;
    if trials == 0 {
        return Err("report: `trials` must be positive".to_owned());
    }
    require_quanta(report, "epoch_len", "report")?;
    let precise_cost = require_quanta(report, "precise_cost_quanta", "report")?;
    let budget = require_quanta(report, "budget_quanta", "report")?;
    let pct = require_quanta(report, "budget_pct", "report")?;
    if budget != precise_cost * pct / 100 {
        return Err(format!(
            "report: budget_quanta {budget} is not {pct}% of precise_cost_quanta {precise_cost}"
        ));
    }
    let scheduled = report.get("scheduled").expect("checked above");
    for key in SCHED_SCHEDULED_KEYS {
        if scheduled.get(key).is_none() {
            return Err(format!("scheduled: missing `{key}`"));
        }
    }
    let spent = require_quanta(scheduled, "spent_quanta", "scheduled")?;
    let met = match scheduled.get("budget_met") {
        Some(Json::Bool(b)) => *b,
        _ => return Err("scheduled: `budget_met` must be a boolean".to_owned()),
    };
    // The verdict is defined as the invariant — exact integer arithmetic.
    if met != (spent <= budget) {
        return Err(format!(
            "scheduled: budget_met {met} inconsistent with spent {spent} vs budget {budget}"
        ));
    }
    require_error_and_qos(scheduled, "scheduled")?;
    require_quanta(scheduled, "implausible", "scheduled")?;
    let counts = scheduled
        .get("level_counts")
        .and_then(Json::as_object)
        .ok_or("scheduled: `level_counts` must be an object")?;
    if counts.len() != SCHED_LEVELS.len() {
        return Err(format!(
            "scheduled: expected {} level counts, found {}",
            SCHED_LEVELS.len(),
            counts.len()
        ));
    }
    let mut census = 0u128;
    for level in SCHED_LEVELS {
        census += require_quanta(
            scheduled.get("level_counts").expect("checked above"),
            level,
            "scheduled.level_counts",
        )?;
    }
    if census != trials {
        return Err(format!("scheduled: level counts sum to {census}, expected {trials} trials"));
    }
    let baselines = report
        .get("baselines")
        .and_then(Json::as_array)
        .ok_or("report: `baselines` must be an array")?;
    if baselines.is_empty() {
        return Err("report: `baselines` is empty".to_owned());
    }
    for (i, row) in baselines.iter().enumerate() {
        let what = format!("baselines[{i}]");
        for key in SCHED_BASELINE_KEYS {
            if row.get(key).is_none() {
                return Err(format!("{what}: missing `{key}`"));
            }
        }
        let level = row
            .get("level")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{what}: `level` must be a string"))?;
        if !SCHED_LEVELS.contains(&level) {
            return Err(format!("{what}: unknown level `{level}`"));
        }
        let spent = require_quanta(row, "spent_quanta", &what)?;
        let fits = match row.get("fits_budget") {
            Some(Json::Bool(b)) => *b,
            _ => return Err(format!("{what}: `fits_budget` must be a boolean")),
        };
        if fits != (spent <= budget) {
            return Err(format!(
                "{what}: fits_budget {fits} inconsistent with spent {spent} vs budget {budget}"
            ));
        }
        require_error_and_qos(row, &what)?;
    }
    Ok(baselines.len())
}

/// Top-level keys every `enerj-serveperf/1` report must carry.
const SERVEPERF_KEYS: [&str; 6] =
    ["schema", "kill_resume_identical", "identity", "throughput", "first_trial", "config"];

/// Keys the `enerj-serveperf/1` identity section must carry.
const SERVEPERF_IDENTITY_KEYS: [&str; 5] =
    ["trials", "bytes", "kill_after_trials", "quanta_total", "quanta_baseline"];

/// Keys the `enerj-serveperf/1` throughput section must carry.
const SERVEPERF_THROUGHPUT_KEYS: [&str; 5] =
    ["jobs", "trials_per_job", "wall_seconds", "jobs_per_sec", "trials_per_sec"];

/// Validates a parsed `enerj-serveperf/1` campaign-service report (the
/// `servebench` binary's output). Checks schema, the kill-resume identity
/// verdict (servebench refuses to write a report unless the `kill -9` /
/// restart stream was byte-identical to an uninterrupted run, so a report
/// carrying `false` is corrupt by construction), the exact integer quanta
/// in the identity section, and that every rate is finite, positive, and
/// self-consistent — it does *not* gate on absolute throughput, so the CI
/// serve-smoke job catches emitter drift without flaking on slow runners.
/// Returns the throughput-phase job count.
pub fn validate_serveperf_report(report: &Json) -> Result<usize, String> {
    let schema =
        report.get("schema").and_then(Json::as_str).ok_or("report: missing `schema` string")?;
    if schema != "enerj-serveperf/1" {
        return Err(format!("report: schema `{schema}`, expected `enerj-serveperf/1`"));
    }
    for key in SERVEPERF_KEYS {
        if report.get(key).is_none() {
            return Err(format!("report: missing top-level `{key}`"));
        }
    }
    match report.get("kill_resume_identical") {
        Some(Json::Bool(true)) => {}
        Some(Json::Bool(false)) => {
            return Err("report: `kill_resume_identical` is false — the kill-resume \
                        stream diverged from the uninterrupted run"
                .to_owned())
        }
        _ => return Err("report: missing boolean `kill_resume_identical`".to_owned()),
    }

    let identity = report.get("identity").expect("checked above");
    for key in SERVEPERF_IDENTITY_KEYS {
        if identity.get(key).is_none() {
            return Err(format!("identity: missing `{key}`"));
        }
    }
    let trials = require_positive(identity, "trials", "identity")?;
    require_positive(identity, "bytes", "identity")?;
    let kill_after = require_positive(identity, "kill_after_trials", "identity")?;
    if kill_after >= trials {
        return Err(format!(
            "identity: kill_after_trials {kill_after} >= trials {trials} — \
             the kill landed after the campaign finished, so nothing was resumed"
        ));
    }
    let total = require_quanta(identity, "quanta_total", "identity")?;
    let baseline = require_quanta(identity, "quanta_baseline", "identity")?;
    if total == 0 || baseline == 0 {
        return Err(format!(
            "identity: zero quanta (total {total}, baseline {baseline}) — no trials ran"
        ));
    }

    let throughput = report.get("throughput").expect("checked above");
    for key in SERVEPERF_THROUGHPUT_KEYS {
        if throughput.get(key).is_none() {
            return Err(format!("throughput: missing `{key}`"));
        }
    }
    let jobs = require_positive(throughput, "jobs", "throughput")?;
    let per_job = require_positive(throughput, "trials_per_job", "throughput")?;
    let wall = require_positive(throughput, "wall_seconds", "throughput")?;
    let jobs_per_sec = require_positive(throughput, "jobs_per_sec", "throughput")?;
    let trials_per_sec = require_positive(throughput, "trials_per_sec", "throughput")?;
    let implied_jobs = jobs / wall;
    if (jobs_per_sec - implied_jobs).abs() > 0.01 * implied_jobs.max(jobs_per_sec) {
        return Err(format!(
            "throughput: jobs_per_sec {jobs_per_sec} inconsistent with \
             {jobs}/{wall} = {implied_jobs:.3}"
        ));
    }
    let implied_trials = jobs * per_job / wall;
    if (trials_per_sec - implied_trials).abs() > 0.01 * implied_trials.max(trials_per_sec) {
        return Err(format!(
            "throughput: trials_per_sec {trials_per_sec} inconsistent with \
             {jobs}*{per_job}/{wall} = {implied_trials:.3}"
        ));
    }

    let first = report.get("first_trial").expect("checked above");
    require_positive(first, "time_to_first_trial_ms", "first_trial")?;

    let config = report.get("config").expect("checked above");
    for key in ["workers", "chunk", "runs"] {
        require_positive(config, key, "config")?;
    }
    Ok(jobs as usize)
}

/// Validates one NDJSON fault-log line (already parsed).
pub fn validate_fault_event(event: &Json, what: &str) -> Result<(), String> {
    for key in EVENT_KEYS {
        if event.get(key).is_none() {
            return Err(format!("{what}: missing `{key}`"));
        }
    }
    let unit = event
        .get("unit")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what}: `unit` must be a string"))?;
    if FaultKind::from_name(unit).is_none() {
        return Err(format!("{what}: unknown unit `{unit}`"));
    }
    let width = require_number(event, "width", what)?;
    if !(1.0..=64.0).contains(&width) || width.fract() != 0.0 {
        return Err(format!("{what}: width {width} not an integer in 1..=64"));
    }
    let bits = require_number(event, "bits_flipped", what)?;
    if bits < 0.0 || bits > width || bits.fract() != 0.0 {
        return Err(format!("{what}: bits_flipped {bits} not an integer in 0..=width"));
    }
    let time = require_number(event, "time", what)?;
    if time < 0.0 {
        return Err(format!("{what}: negative time {time}"));
    }
    Ok(())
}

/// Validates a whole NDJSON fault log. Returns the event count. An empty
/// log (no lines) is valid — campaigns that inject no faults emit one.
pub fn validate_fault_log(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let what = format!("line {}", lineno + 1);
        let event = Json::parse(line).map_err(|e| format!("{what}: {e}"))?;
        validate_fault_event(&event, &what)?;
        count += 1;
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_apps::trials::{run_campaign_with, CampaignOptions, TrialSpec};
    use enerj_hw::config::{HwConfig, Level};
    use std::sync::Arc;

    fn aggressive_campaign() -> enerj_apps::trials::CampaignReport {
        let app = enerj_apps::all_apps().remove(2); // MonteCarlo
        let reference = Arc::new(enerj_apps::harness::reference(&app).output);
        let specs: Vec<TrialSpec> = (0..3)
            .map(|i| {
                TrialSpec::scored(
                    &app,
                    "Aggressive",
                    HwConfig::for_level(Level::Aggressive),
                    enerj_apps::harness::FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
            })
            .collect();
        let opts = CampaignOptions { threads: 1, log_events: true, ..CampaignOptions::default() };
        run_campaign_with(&specs, &opts)
    }

    #[test]
    fn real_report_and_log_validate() {
        let report = aggressive_campaign();
        let parsed = Json::parse(&report.to_json()).unwrap();
        assert_eq!(validate_campaign_report(&parsed), Ok(3));
        let events = validate_fault_log(&report.fault_log_ndjson()).unwrap();
        assert_eq!(events as u64, report.fault_totals().total_injections());
    }

    #[test]
    fn rejects_wrong_schema_and_missing_keys() {
        for old in ["enerj-campaign/1", "enerj-campaign/2", "enerj-campaign/3", "enerj-campaign/4"]
        {
            let v = Json::parse(&format!(r#"{{"schema":"{old}"}}"#)).unwrap();
            assert!(validate_campaign_report(&v).unwrap_err().contains("schema"));
        }
        let v = Json::parse(r#"{"schema":"enerj-campaign/5","threads":1}"#).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("missing top-level"));
    }

    #[test]
    fn rejects_malformed_scheduler_fields() {
        let good = aggressive_campaign().to_json();
        // Unscheduled campaigns carry null budget fields; a verdict without
        // a budget is drift.
        let verdict_only = good.replacen("\"budget_met\":null", "\"budget_met\":true", 1);
        let v = Json::parse(&verdict_only).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("null together"));
        // Fractional budgets are not integer quanta.
        let fractional = good.replacen("\"budget_quanta\":null", "\"budget_quanta\":0.5", 1);
        let v = Json::parse(&fractional).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("budget_quanta"));
        // The per-trial rung vocabulary is closed.
        let bad_level =
            good.replacen("\"scheduled_level\":null", "\"scheduled_level\":\"Chaos\"", 1);
        let v = Json::parse(&bad_level).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("scheduled_level"));
        // A scheduled campaign with consistent fields passes.
        let scheduled = good
            .replacen("\"budget_quanta\":null", "\"budget_quanta\":999999999999", 1)
            .replacen("\"budget_met\":null", "\"budget_met\":true", 1)
            .replace("\"scheduled_level\":null", "\"scheduled_level\":\"Mild\"");
        let v = Json::parse(&scheduled).unwrap();
        assert_eq!(validate_campaign_report(&v), Ok(3));
    }

    #[test]
    fn rejects_malformed_recovery_fields() {
        let good = aggressive_campaign().to_json();
        let zero_attempts = good.replace("\"attempts\":1", "\"attempts\":0");
        let v = Json::parse(&zero_attempts).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("attempts"));
        let too_many_causes =
            good.replace("\"failure_causes\":[]", "\"failure_causes\":[\"qos: a\",\"qos: b\"]");
        let v = Json::parse(&too_many_causes).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("failure causes"));
        let negative_overhead =
            good.replace("\"recovery_energy_overhead\":0,", "\"recovery_energy_overhead\":-0.5,");
        let v = Json::parse(&negative_overhead).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("recovery_energy_overhead"));
    }

    #[test]
    fn rejects_malformed_quanta_fields() {
        let good = aggressive_campaign().to_json();
        // Fractional quanta: energy is an integer count, not a float.
        let fractional = good.replacen("\"baseline_total\":", "\"baseline_total\":0.5,\"_x\":", 1);
        let v = Json::parse(&fractional).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("non-negative integer"));
        // Negative overhead quanta.
        let negative = good.replacen(
            "\"recovery_energy_overhead_quanta\":",
            "\"recovery_energy_overhead_quanta\":-1,\"_x\":",
            1,
        );
        let v = Json::parse(&negative).unwrap();
        assert!(validate_campaign_report(&v)
            .unwrap_err()
            .contains("recovery_energy_overhead_quanta"));
        // Scaled energy above its own baseline is an accounting bug.
        let inverted =
            good.replacen("\"baseline_instructions\":", "\"baseline_instructions\":0,\"_x\":", 1);
        let v = Json::parse(&inverted).unwrap();
        assert!(validate_campaign_report(&v).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn recovery_campaign_report_validates() {
        use enerj_apps::recovery::{chaos_config, Policy};
        let app = enerj_apps::all_apps().remove(2); // MonteCarlo
        let reference = Arc::new(enerj_apps::harness::reference(&app).output);
        let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
        let specs: Vec<TrialSpec> = (0..3)
            .map(|i| {
                TrialSpec::scored(
                    &app,
                    "chaos",
                    chaos_config(50.0),
                    enerj_apps::harness::FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
                .with_recovery(policy.clone())
            })
            .collect();
        let report = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
        assert!(report.recovered_count() > 0, "threshold 0 under chaos must escalate");
        let parsed = Json::parse(&report.to_json()).unwrap();
        assert_eq!(validate_campaign_report(&parsed), Ok(3));
    }

    const HWPERF_OK: &str = r#"{
        "schema": "enerj-hwperf/2",
        "quick": true,
        "kernels": [
            {"kernel": "sram", "level": "Mild", "ops": 400000,
             "baseline_ops_per_sec": 50000000.0,
             "amortized_ops_per_sec": 1500000000.0, "speedup": 30.0}
        ],
        "batched": [
            {"kernel": "alu", "level": "Mild", "ops": 397312,
             "scalar_ops_per_sec": 100000000.0,
             "batched_ops_per_sec": 600000000.0, "speedup": 6.0}
        ],
        "macro": [
            {"app": "FFT", "level": "Aggressive", "ops": 24576,
             "ops_per_sec": 40000000.0}
        ]
    }"#;

    #[test]
    fn hwperf_report_validates() {
        let v = Json::parse(HWPERF_OK).unwrap();
        assert_eq!(validate_hwperf_report(&v), Ok(2));
    }

    #[test]
    fn hwperf_rejects_drifted_reports() {
        let wrong_schema = HWPERF_OK.replace("enerj-hwperf/2", "enerj-hwperf/1");
        let v = Json::parse(&wrong_schema).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("schema"));

        let no_kernels = HWPERF_OK.replace("\"kernel\": \"sram\"", "\"unit\": \"sram\"");
        let v = Json::parse(&no_kernels).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("kernel"));

        let bad_level = HWPERF_OK.replacen("\"Mild\"", "\"Extreme\"", 1);
        let v = Json::parse(&bad_level).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("unknown level"));

        let zero_rate = HWPERF_OK
            .replace("\"baseline_ops_per_sec\": 50000000.0", "\"baseline_ops_per_sec\": 0.0");
        let v = Json::parse(&zero_rate).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("positive"));

        let wrong_speedup = HWPERF_OK.replace("\"speedup\": 30.0", "\"speedup\": 2.0");
        let v = Json::parse(&wrong_speedup).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn hwperf_rejects_bad_batched_rows() {
        // `/2` reports must carry the batched grid at all.
        let missing = HWPERF_OK.replace("\"batched\"", "\"sliced\"");
        let v = Json::parse(&missing).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("batched"));

        // A serialized `inf` (the unclamped `--quick` denominator bug)
        // parses as a malformed number and must be rejected, as must a
        // literal non-finite-looking huge value drifting in.
        let inf_rate = HWPERF_OK
            .replace("\"batched_ops_per_sec\": 600000000.0", "\"batched_ops_per_sec\": -1.0");
        let v = Json::parse(&inf_rate).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("positive"));

        let wrong_speedup = HWPERF_OK.replace("\"speedup\": 6.0", "\"speedup\": 60.0");
        let v = Json::parse(&wrong_speedup).unwrap();
        assert!(validate_hwperf_report(&v).unwrap_err().contains("inconsistent"));
    }

    const CAMPAIGNPERF_OK: &str = r#"{
        "schema": "enerj-campaignperf/1",
        "quick": true,
        "identical": true,
        "memory": {
            "trials": 50000, "threads": 2, "chunk": 64,
            "trials_per_sec": 120000.0, "ndjson_bytes": 48000000,
            "peak_buffered": 250, "buffer_capacity": 256, "vm_hwm_kb": 2900
        },
        "engine": [
            {"threads": 2, "chunk": 16, "trials": 2000,
             "slot_trials_per_sec": 50000.0, "streamed_trials_per_sec": 600000.0,
             "speedup": 12.0, "peak_buffered": 64, "buffer_capacity": 64}
        ]
    }"#;

    #[test]
    fn campaignperf_report_validates() {
        let v = Json::parse(CAMPAIGNPERF_OK).unwrap();
        assert_eq!(validate_campaignperf_report(&v), Ok(1));
    }

    #[test]
    fn campaignperf_rejects_drifted_reports() {
        let wrong_schema = CAMPAIGNPERF_OK.replace("campaignperf/1", "campaignperf/0");
        let v = Json::parse(&wrong_schema).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("schema"));

        let not_identical = CAMPAIGNPERF_OK.replace("\"identical\": true", "\"identical\": false");
        let v = Json::parse(&not_identical).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("disagreed"));

        let wrong_speedup = CAMPAIGNPERF_OK.replace("\"speedup\": 12.0", "\"speedup\": 3.0");
        let v = Json::parse(&wrong_speedup).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("inconsistent"));

        let zero_rate = CAMPAIGNPERF_OK
            .replace("\"slot_trials_per_sec\": 50000.0", "\"slot_trials_per_sec\": 0.0");
        let v = Json::parse(&zero_rate).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("positive"));

        let no_engine = CAMPAIGNPERF_OK.replace("\"engine\"", "\"grid\"");
        let v = Json::parse(&no_engine).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("engine"));
    }

    #[test]
    fn campaignperf_rejects_unbounded_windows() {
        // A peak above capacity means the reorder window leaked — the
        // bounded-memory claim would be false.
        let overflow = CAMPAIGNPERF_OK.replace("\"peak_buffered\": 250", "\"peak_buffered\": 300");
        let v = Json::parse(&overflow).unwrap();
        assert!(validate_campaignperf_report(&v).unwrap_err().contains("not bounded"));
    }

    #[test]
    fn campaignperf_accepts_real_bench_output() {
        // Shape-check the committed capture, when present.
        let path = crate::bench_report_path("campaignperf");
        if let Ok(text) = std::fs::read_to_string(path) {
            let v = Json::parse(&text).unwrap();
            assert!(validate_campaignperf_report(&v).unwrap() >= 1);
        }
    }

    const SCHED_OK: &str = r#"{
        "schema": "enerj-sched/1", "quick": true, "meter": "sram",
        "budget_pct": 60, "trials": 24, "epoch_len": 3,
        "precise_cost_quanta": 1000000000000,
        "budget_quanta": 600000000000,
        "identical": true,
        "scheduled": {
            "spent_quanta": 587500000000, "budget_met": true,
            "mean_error": 0.03125, "qos": 0.96875, "implausible": 1,
            "level_counts": {"Precise": 6, "Mild": 9, "Medium": 6, "Aggressive": 3}
        },
        "baselines": [
            {"level": "Precise", "spent_quanta": 1000000000000,
             "mean_error": 0.0, "qos": 1.0, "fits_budget": false},
            {"level": "Mild", "spent_quanta": 489000000000,
             "mean_error": 0.0625, "qos": 0.9375, "fits_budget": true}
        ]
    }"#;

    #[test]
    fn sched_report_validates() {
        let v = Json::parse(SCHED_OK).unwrap();
        assert_eq!(validate_sched_report(&v), Ok(2));
    }

    #[test]
    fn sched_validator_matches_the_real_serializer() {
        // The synthetic SCHED_OK above mirrors `sched::SchedReport`; make
        // sure the actual serializer round-trips through the validator too.
        use crate::sched::{BaselineRow, SchedReport, ScheduledRow};
        use enerj_apps::scheduler::SchedLevel;
        use enerj_hw::energy::QuantaMeter;
        use enerj_hw::quanta::EnergyQuanta;
        let report = SchedReport {
            quick: false,
            meter: QuantaMeter::Sram,
            budget_pct: 60,
            trials: 10,
            epoch_len: 1,
            precise_cost_quanta: EnergyQuanta::new(500),
            budget_quanta: EnergyQuanta::new(300),
            identical: true,
            scheduled: ScheduledRow {
                spent_quanta: EnergyQuanta::new(299),
                budget_met: true,
                mean_error: 0.25,
                qos: 0.75,
                implausible: 0,
                level_counts: [1, 2, 3, 4],
            },
            baselines: vec![BaselineRow {
                level: SchedLevel::Aggressive,
                spent_quanta: EnergyQuanta::new(200),
                mean_error: 0.5,
                qos: 0.5,
                fits_budget: true,
            }],
        };
        let v = Json::parse(&report.to_json()).unwrap();
        assert_eq!(validate_sched_report(&v), Ok(1));
    }

    #[test]
    fn sched_rejects_drifted_reports() {
        let wrong_schema = SCHED_OK.replace("enerj-sched/1", "enerj-sched/0");
        let v = Json::parse(&wrong_schema).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("schema"));

        let diverged = SCHED_OK.replace("\"identical\": true", "\"identical\": false");
        let v = Json::parse(&diverged).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("diverged"));

        // A dishonest verdict: claims met while spent > budget.
        let dishonest =
            SCHED_OK.replace("\"spent_quanta\": 587500000000", "\"spent_quanta\": 600000000001");
        let v = Json::parse(&dishonest).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("inconsistent"));

        // The budget must be exactly pct% of the precise cost.
        let wrong_budget =
            SCHED_OK.replace("\"budget_quanta\": 600000000000", "\"budget_quanta\": 600000000001");
        let v = Json::parse(&wrong_budget).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("not 60%"));

        // The level census must cover every trial.
        let short_census = SCHED_OK.replace("\"Mild\": 9", "\"Mild\": 8");
        let v = Json::parse(&short_census).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("sum to"));

        let bad_meter = SCHED_OK.replace("\"meter\": \"sram\"", "\"meter\": \"joules\"");
        let v = Json::parse(&bad_meter).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("unknown meter"));

        let bad_level = SCHED_OK.replace("\"level\": \"Mild\"", "\"level\": \"Extreme\"");
        let v = Json::parse(&bad_level).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("unknown level"));

        // A baseline's fits_budget must match its own spend.
        let wrong_fit = SCHED_OK
            .replace("\"qos\": 1.0, \"fits_budget\": false", "\"qos\": 1.0, \"fits_budget\": true");
        let v = Json::parse(&wrong_fit).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("fits_budget"));

        // QoS must be 1 - mean_error.
        let wrong_qos = SCHED_OK.replace("\"qos\": 0.96875", "\"qos\": 0.9");
        let v = Json::parse(&wrong_qos).unwrap();
        assert!(validate_sched_report(&v).unwrap_err().contains("inconsistent"));
    }

    #[test]
    fn sched_accepts_real_bench_output() {
        // Shape-check the committed capture, when present.
        let path = crate::bench_report_path("sched");
        if let Ok(text) = std::fs::read_to_string(path) {
            let v = Json::parse(&text).unwrap();
            assert!(validate_sched_report(&v).unwrap() >= 1);
        }
    }

    /// A structurally valid `enerj-serveperf/1` report (matches the
    /// `servebench` serializer, with quanta above 2^53 to exercise the
    /// lossless integer path).
    const SERVEPERF_OK: &str = r#"{
      "schema": "enerj-serveperf/1",
      "kill_resume_identical": true,
      "identity": {"trials": 24, "bytes": 26715, "kill_after_trials": 2,
                   "quanta_total": 9007199254740995, "quanta_baseline": 9007199254741997},
      "throughput": {"jobs": 8, "trials_per_job": 24,
                     "wall_seconds": 0.25, "jobs_per_sec": 32.0, "trials_per_sec": 768.0},
      "first_trial": {"time_to_first_trial_ms": 20.7},
      "config": {"workers": 2, "chunk": 2, "runs": 6}
    }"#;

    #[test]
    fn serveperf_report_validates() {
        let v = Json::parse(SERVEPERF_OK).unwrap();
        assert_eq!(validate_serveperf_report(&v), Ok(8));
    }

    #[test]
    fn serveperf_rejects_drifted_reports() {
        let wrong_schema = SERVEPERF_OK.replace("serveperf/1", "serveperf/0");
        let v = Json::parse(&wrong_schema).unwrap();
        assert!(validate_serveperf_report(&v).unwrap_err().contains("schema"));

        // servebench exits without writing a report when the identity gate
        // fails, so `false` here can only mean a hand-edited or corrupt file.
        let diverged = SERVEPERF_OK
            .replace("\"kill_resume_identical\": true", "\"kill_resume_identical\": false");
        let v = Json::parse(&diverged).unwrap();
        assert!(validate_serveperf_report(&v).unwrap_err().contains("diverged"));

        // A kill after the last trial means nothing was actually resumed.
        let late_kill =
            SERVEPERF_OK.replace("\"kill_after_trials\": 2", "\"kill_after_trials\": 24");
        let v = Json::parse(&late_kill).unwrap();
        assert!(validate_serveperf_report(&v).unwrap_err().contains("nothing was resumed"));

        let wrong_rate = SERVEPERF_OK.replace("\"jobs_per_sec\": 32.0", "\"jobs_per_sec\": 99.0");
        let v = Json::parse(&wrong_rate).unwrap();
        assert!(validate_serveperf_report(&v).unwrap_err().contains("inconsistent"));

        let fractional_quanta = SERVEPERF_OK
            .replace("\"quanta_total\": 9007199254740995", "\"quanta_total\": 9007199254740995.5");
        let v = Json::parse(&fractional_quanta).unwrap();
        assert!(validate_serveperf_report(&v).unwrap_err().contains("quanta_total"));

        let no_config = SERVEPERF_OK.replace("\"config\"", "\"settings\"");
        let v = Json::parse(&no_config).unwrap();
        assert!(validate_serveperf_report(&v).unwrap_err().contains("config"));
    }

    #[test]
    fn serveperf_accepts_real_bench_output() {
        // Shape-check the committed capture, when present.
        let path = crate::bench_report_path("serveperf");
        if let Ok(text) = std::fs::read_to_string(path) {
            let v = Json::parse(&text).unwrap();
            assert!(validate_serveperf_report(&v).unwrap() >= 1);
        }
    }

    #[test]
    fn rejects_bad_fault_log_lines() {
        assert!(validate_fault_log("not json\n").is_err());
        let missing = r#"{"trial":0,"app":"X","label":"L","seed":1,"time":0.0,"unit":"int-timing","width":64}"#;
        assert!(validate_fault_log(missing).unwrap_err().contains("bits_flipped"));
        let bad_unit = r#"{"trial":0,"app":"X","label":"L","seed":1,"time":0.0,"unit":"warp-core","width":64,"bits_flipped":1}"#;
        assert!(validate_fault_log(bad_unit).unwrap_err().contains("unknown unit"));
        let bits_over_width = r#"{"trial":0,"app":"X","label":"L","seed":1,"time":0.0,"unit":"int-timing","width":8,"bits_flipped":9}"#;
        assert!(validate_fault_log(bits_over_width).is_err());
        assert_eq!(validate_fault_log(""), Ok(0));
    }
}
