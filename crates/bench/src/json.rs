//! A minimal JSON reader for the bench tooling.
//!
//! The workspace serializes its reports with a hand-rolled emitter (no
//! serde — the build is offline); `faultscope` and `validate_schema` need
//! the inverse. This is a small recursive-descent parser covering exactly
//! the JSON the emitters produce: objects, arrays, strings with the
//! standard escapes, numbers (including exponents), booleans and null.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer literal (no fraction, no exponent) that fits in `i128`.
    ///
    /// Kept exact so 128-bit energy-quanta counters survive parsing:
    /// `f64` can only represent integers up to 2^53 exactly, and a
    /// campaign's quanta overflow that.
    Int(i128),
    /// Any other number: fractions, exponents, and integers out of `i128`
    /// range (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order (duplicate keys are kept as-is;
    /// [`Json::get`] returns the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// The value of `key`, when this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, when this is a number. Integers coerce (with
    /// the usual `f64` rounding above 2^53); use [`Json::as_i128`] /
    /// [`Json::as_u128`] where exactness matters.
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The exact integer value, when this is an integer literal.
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Json::Int(x) => Some(*x),
            _ => None,
        }
    }

    /// The exact non-negative integer value, when this is an integer
    /// literal that fits. The accessor for energy-quanta fields.
    #[allow(clippy::cast_sign_loss)]
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Int(x) if *x >= 0 => Some(*x as u128),
            _ => None,
        }
    }

    /// The string value, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs never occur in our emitters'
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        let mut exact = true;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            exact = false;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            exact = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if exact {
            // Integer literal: keep it lossless when it fits in i128 (the
            // emitters' u128 quanta stay well inside that range); only an
            // astronomically large literal falls back to f64.
            if let Ok(x) = text.parse::<i128>() {
                return Ok(Json::Int(x));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e2").unwrap(), Json::Num(-250.0));
        assert_eq!(Json::parse("42").unwrap(), Json::Int(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_owned()));
        assert_eq!(Json::parse("\"\\u0041\"").unwrap(), Json::Str("A".to_owned()));
    }

    #[test]
    fn integers_beyond_f64_precision_stay_exact() {
        // 2^53 and 2^53 + 1 collapse to the same f64; the parser must
        // keep them distinct, or `--quanta-compare` could pass on reports
        // whose quanta actually differ.
        let a = Json::parse("9007199254740992").unwrap();
        let b = Json::parse("9007199254740993").unwrap();
        assert_ne!(a, b);
        assert_eq!(a.as_u128(), Some(9_007_199_254_740_992));
        assert_eq!(b.as_u128(), Some(9_007_199_254_740_993));
        assert_eq!(b.as_i128(), Some(9_007_199_254_740_993));
        // The f64 view of both rounds to the same value — the documented
        // lossy coercion.
        assert_eq!(a.as_f64(), b.as_f64());
        // Negative integers have no u128 reading.
        assert_eq!(Json::parse("-3").unwrap().as_u128(), None);
        // Fractions and exponents are not integers.
        assert_eq!(Json::parse("2.0").unwrap().as_u128(), None);
        assert_eq!(Json::parse("2e0").unwrap().as_u128(), None);
        // An integer too large even for i128 falls back to f64.
        let huge = "340282366920938463463374607431768211455"; // u128::MAX
        assert!(matches!(Json::parse(huge).unwrap(), Json::Num(_)));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a":[1,2,{"b":null}],"c":"x","d":{}}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[1].as_f64(), Some(2.0));
        assert_eq!(a[2].get("b"), Some(&Json::Null));
        assert_eq!(v.get("d").and_then(Json::as_object), Some(&[][..]));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{}x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn round_trips_a_real_campaign_report() {
        use enerj_apps::trials::{run_campaign, TrialSpec};
        let app = enerj_apps::all_apps().remove(2); // MonteCarlo
        let report = run_campaign(&[TrialSpec::reference(&app)], 1);
        let v = Json::parse(&report.to_json()).expect("emitter output parses");
        assert_eq!(v.get("schema").and_then(Json::as_str), Some("enerj-campaign/5"));
        let trials = v.get("trials").and_then(Json::as_array).unwrap();
        assert_eq!(trials.len(), 1);
        assert_eq!(trials[0].get("app").and_then(Json::as_str), Some("MonteCarlo"));
    }
}
