//! Shared command-line parsing for every evaluation binary.
//!
//! All binaries speak the same flag vocabulary — `--runs`, `--threads`,
//! `--json`, `--trace`, `--fault-log`, plus free binary-specific mode flags
//! collected in [`Options::flags`] — so the parser lives here once;
//! fig3/fig4/fig5/table3/ablation/tuning and hwbench all use it rather
//! than hand-rolling their own loops.

use enerj_apps::trials::CampaignOptions;

/// Simple command-line options shared by the binaries.
#[derive(Debug, Clone)]
pub struct Options {
    /// Fault-injection runs per data point (Figure 5 uses 20).
    pub runs: u64,
    /// Worker threads for trial campaigns (`0` = available parallelism).
    pub threads: usize,
    /// Emit JSON rows instead of a text table.
    pub json: bool,
    /// Write the campaign's structured fault log (NDJSON) here.
    pub fault_log: Option<String>,
    /// Print live campaign progress and per-unit fault totals on stderr.
    pub trace: bool,
    /// Campaign chunk size (`0` = auto): trial indices a worker claims per
    /// work-stealing grab. A throughput knob only — never changes results.
    pub chunk: usize,
    /// Wall-clock deadline in seconds for each campaign the binary runs:
    /// checked at chunk claim, so an out-of-time campaign truncates at a
    /// chunk boundary with an explicit `deadline_exceeded` verdict in its
    /// summary (completed trials stay bit-identical to the undeadlined
    /// prefix). `None` = no deadline.
    pub deadline_secs: Option<f64>,
    /// Extra mode flags (e.g. `--error-modes` for the ablation binary,
    /// `--quick` for hwbench).
    pub flags: Vec<String>,
}

impl Options {
    /// Parses `std::env::args`-style arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(args: impl Iterator<Item = String>, default_runs: u64) -> Options {
        let mut opts = Options {
            runs: default_runs,
            threads: 0,
            json: false,
            fault_log: None,
            trace: false,
            chunk: 0,
            deadline_secs: None,
            flags: Vec::new(),
        };
        let mut args = args.skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--runs" => {
                    let v = args.next().expect("--runs needs a value");
                    opts.runs = v.parse().expect("--runs needs an integer");
                }
                "--threads" => {
                    let v = args.next().expect("--threads needs a value");
                    opts.threads = v.parse().expect("--threads needs an integer");
                }
                "--json" => opts.json = true,
                "--fault-log" => {
                    opts.fault_log = Some(args.next().expect("--fault-log needs a path"));
                }
                "--trace" => opts.trace = true,
                "--chunk" => {
                    let v = args.next().expect("--chunk needs a value");
                    opts.chunk = v.parse().expect("--chunk needs an integer");
                }
                "--deadline-secs" => {
                    let v = args.next().expect("--deadline-secs needs a value");
                    let secs: f64 = v.parse().expect("--deadline-secs needs a number");
                    assert!(
                        secs.is_finite() && secs >= 0.0,
                        "--deadline-secs needs a non-negative number"
                    );
                    opts.deadline_secs = Some(secs);
                }
                other => opts.flags.push(other.to_owned()),
            }
        }
        opts
    }

    /// Whether a binary-specific mode flag (e.g. `--quick`) was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// The campaign options these flags imply: `--fault-log` turns on event
    /// collection, `--trace` turns on live progress.
    pub fn campaign_options(&self) -> CampaignOptions {
        CampaignOptions {
            threads: self.threads,
            log_events: self.fault_log.is_some(),
            progress: self.trace,
            chunk: self.chunk,
            deadline: self.deadline_secs.map(std::time::Duration::from_secs_f64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_runs_threads_and_json() {
        let opts = Options::parse(
            ["bin", "--runs", "7", "--threads", "3", "--json", "--error-modes"]
                .iter()
                .map(|s| s.to_string()),
            20,
        );
        assert_eq!(opts.runs, 7);
        assert_eq!(opts.threads, 3);
        assert!(opts.json);
        assert_eq!(opts.flags, vec!["--error-modes"]);
        assert!(opts.has_flag("--error-modes"));
        assert!(!opts.has_flag("--quick"));
    }

    #[test]
    fn parses_telemetry_flags() {
        let opts = Options::parse(
            ["bin", "--fault-log", "out.ndjson", "--trace"].iter().map(|s| s.to_string()),
            20,
        );
        assert_eq!(opts.fault_log.as_deref(), Some("out.ndjson"));
        assert!(opts.trace);
        let c = opts.campaign_options();
        assert!(c.log_events);
        assert!(c.progress);
        let plain = Options::parse(["bin"].iter().map(|s| s.to_string()), 20);
        let c = plain.campaign_options();
        assert!(!c.log_events);
        assert!(!c.progress);
    }

    #[test]
    fn default_runs_apply() {
        let opts = Options::parse(["bin"].iter().map(|s| s.to_string()), 20);
        assert_eq!(opts.runs, 20);
        assert_eq!(opts.threads, 0, "default = available parallelism");
        assert!(!opts.json);
    }
}
