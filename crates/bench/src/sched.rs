//! The `enerj-sched/1` budget-scheduling report: what the `schedbench`
//! binary writes to `results/BENCH_sched.json`.
//!
//! One report captures a whole budget experiment: the exact all-Precise
//! metered cost, the budget derived from it, the scheduled campaign's
//! spend/QoS/level census, every static single-level baseline on the same
//! workload and seeds, and the binary's own threads-1-vs-2 bit-identity
//! verification verdict. The serialization is byte-stable (golden-file
//! locked) so schema drift is caught the same way `enerj-campaign/5` drift
//! is.

use std::fmt::Write as _;

use enerj_apps::scheduler::SchedLevel;
use enerj_hw::energy::QuantaMeter;
use enerj_hw::quanta::EnergyQuanta;

/// The scheduled campaign's half of the comparison.
#[derive(Debug, Clone)]
pub struct ScheduledRow {
    /// Exact metered spend over the whole campaign.
    pub spent_quanta: EnergyQuanta,
    /// Whether the spend ended at or under the budget.
    pub budget_met: bool,
    /// Mean output error over all trials.
    pub mean_error: f64,
    /// Aggregate QoS (`1 − mean_error`).
    pub qos: f64,
    /// Scalar outputs the plausibility estimator flagged.
    pub implausible: u64,
    /// Trials per rung, summed over apps (index order of
    /// [`SchedLevel::ALL`]).
    pub level_counts: [u64; 4],
}

/// One static single-level baseline on the same workload and seeds.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// The rung every trial was pinned to.
    pub level: SchedLevel,
    /// Exact metered spend of the whole static campaign.
    pub spent_quanta: EnergyQuanta,
    /// Mean output error over all trials.
    pub mean_error: f64,
    /// Aggregate QoS (`1 − mean_error`).
    pub qos: f64,
    /// Whether this baseline's spend fits the scheduled budget.
    pub fits_budget: bool,
}

/// A complete `enerj-sched/1` report.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// Whether this was a reduced (`--quick`) run.
    pub quick: bool,
    /// What the budget meters.
    pub meter: QuantaMeter,
    /// The budget as a percentage of the all-Precise metered cost.
    pub budget_pct: u32,
    /// Trials in the evaluation campaign.
    pub trials: usize,
    /// Controller epoch length used.
    pub epoch_len: usize,
    /// The exact all-Precise metered cost the budget is derived from.
    pub precise_cost_quanta: EnergyQuanta,
    /// The budget held: `precise_cost_quanta * budget_pct / 100`.
    pub budget_quanta: EnergyQuanta,
    /// The binary's threads-1-vs-2 bit-identity verification verdict.
    pub identical: bool,
    /// The scheduled campaign.
    pub scheduled: ScheduledRow,
    /// Every static single-level baseline, in rung order.
    pub baselines: Vec<BaselineRow>,
}

impl SchedReport {
    /// Serializes to the byte-stable `enerj-sched/1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"schema\":\"enerj-sched/1\",\"quick\":{},\"meter\":\"{}\",\
             \"budget_pct\":{},\"trials\":{},\"epoch_len\":{},\
             \"precise_cost_quanta\":{},\"budget_quanta\":{},\"identical\":{}",
            self.quick,
            self.meter.name(),
            self.budget_pct,
            self.trials,
            self.epoch_len,
            self.precise_cost_quanta,
            self.budget_quanta,
            self.identical,
        );
        let s = &self.scheduled;
        let _ = write!(
            out,
            ",\"scheduled\":{{\"spent_quanta\":{},\"budget_met\":{},\
             \"mean_error\":{},\"qos\":{},\"implausible\":{},\"level_counts\":{{",
            s.spent_quanta, s.budget_met, s.mean_error, s.qos, s.implausible
        );
        for (i, level) in SchedLevel::ALL.iter().enumerate() {
            let _ = write!(
                out,
                "{}\"{}\":{}",
                if i == 0 { "" } else { "," },
                level.name(),
                s.level_counts[i]
            );
        }
        out.push_str("}},\"baselines\":[");
        for (i, b) in self.baselines.iter().enumerate() {
            let _ = write!(
                out,
                "{}{{\"level\":\"{}\",\"spent_quanta\":{},\"mean_error\":{},\
                 \"qos\":{},\"fits_budget\":{}}}",
                if i == 0 { "" } else { "," },
                b.level.name(),
                b.spent_quanta,
                b.mean_error,
                b.qos,
                b.fits_budget
            );
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fully synthetic report with fixed values, exercising every branch
    /// of the serializer.
    fn synthetic_sched_report() -> SchedReport {
        SchedReport {
            quick: true,
            meter: QuantaMeter::Sram,
            budget_pct: 60,
            trials: 24,
            epoch_len: 3,
            precise_cost_quanta: EnergyQuanta::new(1_000_000_000_000),
            budget_quanta: EnergyQuanta::new(600_000_000_000),
            identical: true,
            scheduled: ScheduledRow {
                spent_quanta: EnergyQuanta::new(587_500_000_000),
                budget_met: true,
                mean_error: 0.03125,
                qos: 0.96875,
                implausible: 1,
                level_counts: [6, 9, 6, 3],
            },
            baselines: vec![
                BaselineRow {
                    level: SchedLevel::Precise,
                    spent_quanta: EnergyQuanta::new(1_000_000_000_000),
                    mean_error: 0.0,
                    qos: 1.0,
                    fits_budget: false,
                },
                BaselineRow {
                    level: SchedLevel::Mild,
                    spent_quanta: EnergyQuanta::new(489_000_000_000),
                    mean_error: 0.0625,
                    qos: 0.9375,
                    fits_budget: true,
                },
            ],
        }
    }

    #[test]
    fn serializes_every_section() {
        let json = synthetic_sched_report().to_json();
        assert!(json.starts_with("{\"schema\":\"enerj-sched/1\""));
        assert!(json.contains("\"meter\":\"sram\""));
        assert!(json.contains("\"budget_met\":true"));
        assert!(json
            .contains("\"level_counts\":{\"Precise\":6,\"Mild\":9,\"Medium\":6,\"Aggressive\":3}"));
        assert!(json.contains("\"level\":\"Mild\""));
        assert!(json.ends_with("]}"));
    }
}
