//! # enerj-bench: the evaluation harness
//!
//! Binaries that regenerate every table and figure of the EnerJ paper's
//! evaluation (PLDI 2011, section 6):
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — language constructs and their renderings |
//! | `table2` | Table 2 — approximation strategies and savings |
//! | `table3` | Table 3 — applications, QoS metrics, annotation density |
//! | `fig3` | Figure 3 — proportion of approximate storage and computation |
//! | `fig4` | Figure 4 — estimated CPU/memory energy per configuration |
//! | `fig5` | Figure 5 — output error at three levels (mean of N runs) |
//! | `ablation` | section 6.2 — per-strategy isolation and FU error modes |
//! | `tuning` | section 6.2 extension — offline per-app QoS tuning |
//!
//! Each binary accepts `--runs N` where sampling applies and prints
//! fixed-width text tables; pass `--json` for machine-readable rows and
//! `--threads N` to bound the trial campaign's worker count (default: all
//! available cores). Campaign-backed binaries also drop a machine-readable
//! `results/BENCH_<name>.json` campaign report (schema
//! `enerj-campaign/5`) on every run, and accept the telemetry flags
//! `--trace` (live progress + per-unit fault totals on stderr) and
//! `--fault-log <path>` (structured NDJSON fault-event stream). The
//! `faultscope` binary renders per-app, per-unit fault breakdowns from
//! either artifact; `validate_schema` checks them against the documented
//! schemas (see DESIGN.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod json;
pub mod sched;
pub mod validate;

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use enerj_apps::trials::CampaignReport;

pub use cli::Options;

/// The repository's `results/` directory (resolved relative to this crate,
/// so it lands at the workspace root from any working directory).
pub fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Where a binary's campaign report lands: `results/BENCH_<name>.json`.
pub fn bench_report_path(name: &str) -> PathBuf {
    results_dir().join(format!("BENCH_{name}.json"))
}

/// Writes a campaign report to [`bench_report_path`] and prints where it
/// went (on stderr, so `--json` stdout stays machine-readable).
pub fn write_bench_report(name: &str, report: &CampaignReport) {
    let path = bench_report_path(name);
    match report.write_json(&path) {
        Ok(()) => eprintln!(
            "campaign report: {} trials, {} panics, {:.2}s on {} threads -> {}",
            report.trials.len(),
            report.panic_count(),
            report.wall.as_secs_f64(),
            report.threads,
            path.display()
        ),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Standard campaign epilogue: write the `results/BENCH_<name>.json`
/// report, then honour the telemetry flags — `--trace` prints the per-unit
/// fault totals on stderr, `--fault-log` writes the NDJSON event stream.
pub fn finish_campaign(name: &str, report: &CampaignReport, opts: &Options) {
    write_bench_report(name, report);
    if opts.trace {
        eprintln!("fault totals: {}", report.fault_totals());
    }
    if let Some(path) = &opts.fault_log {
        write_fault_log_to(path, report);
    }
}

/// Writes a report's NDJSON fault log to `path`, reporting on stderr.
pub fn write_fault_log_to(path: &str, report: &CampaignReport) {
    let events: usize = report.trials.iter().map(|t| t.events.len()).sum();
    match report.write_fault_log(Path::new(path)) {
        Ok(()) => eprintln!("fault log: {events} event(s) -> {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// Renders a fixed-width text table: a header row plus data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(line, "{:<w$}  ", h, w = widths[i]);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let rule_len = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    out.push_str(&"-".repeat(rule_len));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", cell, w = widths[i]);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a small error value with three decimals.
pub fn err3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_paths_land_in_results() {
        let p = bench_report_path("fig5");
        assert!(p.ends_with("results/BENCH_fig5.json"), "{}", p.display());
    }

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value" and "1" start at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].chars().nth(col), Some('1'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(err3(0.0456), "0.046");
    }
}
