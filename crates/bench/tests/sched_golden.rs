//! Golden-file lock on the `enerj-sched/1` serialization: the budget
//! experiment report `schedbench` writes must stay byte-stable, the same
//! way the `enerj-campaign/5` report is locked in
//! `crates/apps/tests/telemetry.rs`.

use std::path::PathBuf;

use enerj_apps::scheduler::SchedLevel;
use enerj_bench::json::Json;
use enerj_bench::sched::{BaselineRow, SchedReport, ScheduledRow};
use enerj_bench::validate::validate_sched_report;
use enerj_hw::energy::QuantaMeter;
use enerj_hw::quanta::EnergyQuanta;

/// A fully synthetic report with fixed values, exercising every branch of
/// the serializer: a met budget, a flagged scalar, and baselines on both
/// sides of the budget line.
fn synthetic_report() -> SchedReport {
    SchedReport {
        quick: true,
        meter: QuantaMeter::Sram,
        budget_pct: 60,
        trials: 24,
        epoch_len: 3,
        precise_cost_quanta: EnergyQuanta::new(1_000_000_000_000),
        budget_quanta: EnergyQuanta::new(600_000_000_000),
        identical: true,
        scheduled: ScheduledRow {
            spent_quanta: EnergyQuanta::new(587_500_000_000),
            budget_met: true,
            mean_error: 0.03125,
            qos: 0.96875,
            implausible: 1,
            level_counts: [6, 9, 6, 3],
        },
        baselines: vec![
            BaselineRow {
                level: SchedLevel::Precise,
                spent_quanta: EnergyQuanta::new(1_000_000_000_000),
                mean_error: 0.0,
                qos: 1.0,
                fits_budget: false,
            },
            BaselineRow {
                level: SchedLevel::Mild,
                spent_quanta: EnergyQuanta::new(489_000_000_000),
                mean_error: 0.0625,
                qos: 0.9375,
                fits_budget: true,
            },
            BaselineRow {
                level: SchedLevel::Medium,
                spent_quanta: EnergyQuanta::new(416_000_000_000),
                mean_error: 0.125,
                qos: 0.875,
                fits_budget: true,
            },
            BaselineRow {
                level: SchedLevel::Aggressive,
                spent_quanta: EnergyQuanta::new(345_000_000_000),
                mean_error: 0.25,
                qos: 0.75,
                fits_budget: true,
            },
        ],
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` to the committed golden file; set `BLESS_GOLDEN=1` to
/// rewrite the golden after an intentional schema change.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}; run with BLESS_GOLDEN=1 to create", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from the committed golden; if the schema change is \
         intentional, bump the schema tag, document it in DESIGN.md and \
         re-bless with BLESS_GOLDEN=1"
    );
}

#[test]
fn sched_report_json_matches_the_v1_golden() {
    let json = synthetic_report().to_json();
    assert!(json.starts_with("{\"schema\":\"enerj-sched/1\""));
    check_golden("sched_v1.json", &(json + "\n"));
}

#[test]
fn the_golden_fixture_passes_its_own_validator() {
    let parsed = Json::parse(&synthetic_report().to_json()).expect("serializer output parses");
    assert_eq!(validate_sched_report(&parsed), Ok(4));
}
