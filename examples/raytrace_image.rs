//! Renders the Raytracer benchmark's scene at each approximation level and
//! prints the images as ASCII art side by side — the qualitative
//! observation of section 6.2: "Raytracer always outputs an image
//! resembling its precise output, but the amount of random pixel noise
//! increases with the aggressiveness of approximation."
//!
//! Run with `cargo run --release --example raytrace_image`.

use enerj::apps::qos::{output_error, Output};
use enerj::apps::raytracer;
use enerj::core::Runtime;
use enerj::hw::config::{HwConfig, Level, StrategyMask};

const RAMP: &[u8] = b" .:-=+*#%@";

fn shade_to_char(v: f64) -> char {
    if !v.is_finite() {
        return '?';
    }
    let idx = (v.clamp(0.0, 1.0) * (RAMP.len() - 1) as f64).round() as usize;
    RAMP[idx] as char
}

fn render(cfg: HwConfig, seed: u64) -> Vec<f64> {
    let rt = Runtime::with_config(cfg, seed);
    let Output::Values(img) = rt.run(raytracer::run) else {
        unreachable!("raytracer returns pixel values")
    };
    img
}

fn main() {
    let precise_cfg = HwConfig::for_level(Level::Medium).with_mask(StrategyMask::NONE);
    let precise = render(precise_cfg, 0);

    let mut images = vec![("precise".to_owned(), precise.clone())];
    for level in Level::ALL {
        let img = render(HwConfig::for_level(level), 7);
        let err = output_error(
            raytracer::meta().metric,
            &Output::Values(precise.clone()),
            &Output::Values(img.clone()),
        );
        images.push((format!("{level} (err {err:.3})"), img));
    }

    let side = raytracer::SIDE;
    let mut header = String::new();
    for (label, _) in &images {
        header.push_str(&format!("{label:<w$}", w = side + 2));
    }
    println!("{header}");
    for y in 0..side {
        let mut line = String::new();
        for (_, img) in &images {
            for x in 0..side {
                line.push(shade_to_char(img[y * side + x]));
            }
            line.push_str("  ");
        }
        println!("{line}");
    }
    println!();
    println!("Left to right: precise reference, then Mild / Medium / Aggressive.");
    println!("Noise grows with aggressiveness; the scene stays recognizable.");
}
