//! Energy report: runs the full benchmark suite and prints a per-app
//! breakdown of where the energy went and what approximation saved —
//! including the paper's server vs. mobile system-split comparison
//! (section 5.4: in a mobile setting DRAM is only ~25% of system power,
//! so CPU-side savings matter more).
//!
//! Run with `cargo run --release --example energy_report`.

use enerj::apps::{all_apps, harness};
use enerj::hw::config::Level;
use enerj::hw::energy::{normalized_energy_with_split, DRAM_MOBILE_FRACTION, DRAM_SYSTEM_FRACTION};

fn main() {
    println!("Energy breakdown at the Medium configuration (normalized, 1.0 = precise)");
    println!();
    println!(
        "{:<14} {:>7} {:>7} {:>7} {:>9} {:>9}",
        "app", "instr", "sram", "dram", "server", "mobile"
    );
    println!("{}", "-".repeat(60));
    for app in all_apps() {
        let m = harness::approximate(&app, Level::Medium, 1);
        let params = Level::Medium.params();
        let server = normalized_energy_with_split(&m.stats, &params, DRAM_SYSTEM_FRACTION);
        let mobile = normalized_energy_with_split(&m.stats, &params, DRAM_MOBILE_FRACTION);
        println!(
            "{:<14} {:>7.3} {:>7.3} {:>7.3} {:>8.1}% {:>8.1}%",
            app.meta.name,
            server.instructions,
            server.sram,
            server.dram,
            100.0 * server.savings(),
            100.0 * mobile.savings(),
        );
    }
    println!();
    println!("'server' uses the paper's 55% CPU / 45% DRAM split; 'mobile' the");
    println!("75% / 25% split. Apps whose savings come mostly from DRAM (large");
    println!("approximate arrays) save less on mobile; compute-bound apps more.");
}
