//! Quickstart: the EnerJ programming model in two minutes.
//!
//! Run with `cargo run --example quickstart`.
//!
//! This walks through the paper's core ideas on a tiny computation:
//! approximate data types, endorsement, approximate arrays, and the
//! energy/statistics readout.

use enerj::core::{endorse, Approx, ApproxVec, Precise, Runtime};
use enerj::hw::config::Level;
use enerj::hw::{MemKind, OpKind};

fn main() {
    // A runtime is a simulated approximation-aware machine (section 4).
    // Mild keeps faults vanishingly rare; try Medium or Aggressive and the
    // mean may occasionally come back as garbage — approximate values make
    // no promises, and that is the contract.
    let rt = Runtime::new(Level::Mild, 42);

    let (mean, exact_count) = rt.run(|| {
        // @Approx double[] samples = ... — approximate heap storage.
        let mut samples = ApproxVec::<f64>::from_fn(1000, |i| {
            let x = i as f64 / 1000.0;
            Approx::new(x * x)
        });

        // Approximate reduction: every add runs on the imprecise FPU.
        let mut total = Approx::new(0.0f64);
        for i in 0..samples.len() {
            total += samples.get(i);
        }

        // Precise bookkeeping alongside: counted, never faulted.
        let mut count = Precise::new(0i64);
        for _ in 0..samples.len() {
            count += 1;
        }

        // The *only* way back to precise data is an explicit endorsement
        // (section 2.2). The type system — Rust's, standing in for
        // EnerJ's — rejects any implicit flow:
        //
        //     let p: f64 = total;          // does not compile
        //     if total > 0.3 { ... }       // does not compile either:
        //                                  // comparisons yield Approx<bool>
        let mean = endorse(total / samples.len() as f64);
        (mean, count.get())
    });

    println!("approximate mean of x^2 over [0,1): {mean:.6} (exact: 0.332834)");
    println!("precise loop count: {exact_count}");

    // What did that cost, and what did it save?
    let stats = rt.stats();
    println!(
        "\nops: {} approximate FP, {} precise int",
        stats.fp_approx_ops, stats.int_precise_ops
    );
    println!(
        "approximate share of DRAM storage: {:.1}%",
        100.0 * stats.approx_storage_fraction(MemKind::Dram)
    );
    println!("approximate share of FP ops: {:.1}%", 100.0 * stats.approx_op_fraction(OpKind::Fp));

    let energy = rt.energy();
    println!(
        "\nnormalized system energy: {:.3} ({:.1}% saved vs fully precise)",
        energy.total,
        100.0 * energy.savings()
    );
}
