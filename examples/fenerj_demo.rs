//! FEnerJ tour: compile, check, reject, run and verify non-interference.
//!
//! Run with `cargo run --example fenerj_demo`.
//!
//! FEnerJ is the paper's formal core language (section 3). This demo walks
//! the full pipeline on the paper's own examples: legal and illegal flows,
//! context-qualified fields, method overloading on receiver precision,
//! fault-injecting execution, and the non-interference theorem checked
//! dynamically against an adversarial interpreter.

use enerj::hw::config::{HwConfig, Level};
use enerj::hw::Hardware;
use enerj::lang::interp::{run, ExecMode};
use enerj::lang::noninterference::check_non_interference;
use enerj::lang::{compile, CompileError};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    banner("1. The paper's illegal flow is rejected statically");
    let illegal = "
        class C extends Object { approx int a; int p; }
        main { let c = new C() in c.p := c.a }
    ";
    match compile(illegal) {
        Err(CompileError::Type(e)) => println!("  rejected: {e}"),
        other => panic!("expected a type error, got {other:?}"),
    }

    banner("2. Approximate conditions are rejected (section 2.4)");
    let implicit_flow = "
        class C extends Object { approx int val; }
        main {
            let c = new C() in
            if (c.val == 5) { 1 } else { 0 }
        }
    ";
    match compile(implicit_flow) {
        Err(CompileError::Type(e)) => println!("  rejected: {e}"),
        other => panic!("expected a type error, got {other:?}"),
    }

    banner("3. endorse() makes both legal; the program runs");
    let endorsed = "
        class C extends Object { approx int val; int p; }
        main {
            let c = new C() in
            c.val := 41;
            c.p := endorse(c.val) + 1;
            if (endorse(c.val == 41)) { c.p } else { 0 }
        }
    ";
    let program = compile(endorsed).expect("well-typed");
    let out = run(&program, ExecMode::Reliable).expect("runs");
    println!("  result: {}", out.value.describe());

    banner("4. @Context + overloading: the paper's FloatSet (section 2.5)");
    let floatset = "
        class FloatSet extends Object {
            context float a;
            context float b;
            float mean() { (this.a + this.b) / 2.0 }
            approx float mean() approx { this.a }   // cheap: first element
        }
        main {
            let p = new FloatSet() in
            p.a := 1.0; p.b := 3.0;
            let q = new approx FloatSet() in
            q.a := 1.0; q.b := 3.0;
            endorse(p.mean() * 100.0 + q.mean())
        }
    ";
    let program = compile(floatset).expect("well-typed");
    let out = run(&program, ExecMode::Reliable).expect("runs");
    println!("  precise mean * 100 + approx mean = {}", out.value.describe());
    println!("  (precise instance averages; approximate instance skips work)");

    banner("5. Fault injection: the same program on Aggressive hardware");
    let hw = Rc::new(RefCell::new(Hardware::new(HwConfig::for_level(Level::Aggressive), 1234)));
    let accumulate = "
        class Acc extends Object {
            approx float total;
            float go(int n) {
                if (n == 0) { endorse(this.total) }
                else { this.total := this.total + 1.0; this.go(n - 1) }
            }
        }
        main { new Acc().go(100) }
    ";
    let program = compile(accumulate).expect("well-typed");
    let out = run(&program, ExecMode::Faulty(Rc::clone(&hw))).expect("runs");
    println!("  exact answer 100, approximate answer {}", out.value.describe());
    let stats = hw.borrow().stats();
    println!(
        "  {} approximate FP ops, {} faults injected",
        stats.fp_approx_ops, stats.faults_injected
    );

    banner("6. Non-interference (section 3.3), checked adversarially");
    let isolated = "
        class W extends Object {
            approx float noise;
            int exact;
            int work(int n) {
                if (n == 0) { this.exact }
                else {
                    this.noise := this.noise + 0.5;
                    this.exact := this.exact + 2;
                    this.work(n - 1)
                }
            }
        }
        main { new W().work(50) }
    ";
    let program = compile(isolated).expect("well-typed");
    check_non_interference(&program, 0..50).expect("non-interference holds");
    println!("  50 chaos runs: every approximate value randomized,");
    println!("  precise result and precise heap unchanged. QED (dynamically).");
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}
