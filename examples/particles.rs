//! Particle simulation: the section 4.1 object layout and `@Approximable`
//! classes working together.
//!
//! Run with `cargo run --release --example particles`.
//!
//! Each particle is a DRAM-resident record with a precise identity and
//! approximate kinematic state. The layout follows the paper's scheme —
//! precise fields first, approximate fields after, whole cache lines one
//! or the other — and the example prints which fields actually earned
//! approximate (low-refresh) storage. Velocity updates run on approximable
//! vectors, so the arithmetic rides the imprecise FPU too.

use enerj::apps::approximable::{endorse_vector, Vector3};
use enerj::core::context::ApproxMode;
use enerj::core::{endorse, Approx, ApproxRecord, RecordSchema, Runtime};
use enerj::hw::config::Level;

const PARTICLES: usize = 64;
const STEPS: usize = 50;
const DT: f32 = 0.01;

fn schema() -> RecordSchema {
    // @Approximable class Particle {
    //     int id;                       // precise: identity is critical
    //     @Approx float x, y, z;        // approximate kinematics
    //     @Approx float vx, vy, vz;
    //     @Approx float q0..q11;        // extra payload to spill past the
    // }                                 // first cache line
    let mut b = RecordSchema::builder("Particle").precise_field::<i64>("id");
    for f in [
        "x", "y", "z", "vx", "vy", "vz", "q0", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "q8",
        "q9", "q10", "q11",
    ] {
        b = b.approx_field::<f32>(f);
    }
    b.build()
}

fn main() {
    let rt = Runtime::new(Level::Medium, 2026);
    let (ids_ok, mean_r) = rt.run(|| {
        let schema = schema();

        // Report the layout outcome once.
        {
            let probe = ApproxRecord::new(&schema);
            println!("field storage after the section 4.1 layout:");
            for f in ["x", "y", "z", "vx", "vy", "vz", "q0", "q6", "q11"] {
                println!(
                    "  {f:>3}: {}",
                    if probe.field_storage_approx(f) {
                        "approximate line (low refresh)"
                    } else {
                        "shared precise line (reliable, no savings)"
                    }
                );
            }
        }

        let mut particles: Vec<ApproxRecord> =
            (0..PARTICLES).map(|_| ApproxRecord::new(&schema)).collect();
        for (i, p) in particles.iter_mut().enumerate() {
            p.set_precise("id", i as i64);
            let angle = i as f32 * 0.4;
            p.set_approx("x", Approx::new(angle.cos()));
            p.set_approx("y", Approx::new(angle.sin()));
            p.set_approx("z", Approx::new(0.0f32));
            p.set_approx("vx", Approx::new(-angle.sin() * 0.5));
            p.set_approx("vy", Approx::new(angle.cos() * 0.5));
            p.set_approx("vz", Approx::new(0.05f32));
        }

        // Integrate under a central spring force, all on approximable
        // vectors (@Approx Vector3f in the paper's phrasing).
        for _ in 0..STEPS {
            for p in &mut particles {
                let pos = Vector3::<ApproxMode> {
                    x: p.get_approx::<f32>("x").into(),
                    y: p.get_approx::<f32>("y").into(),
                    z: p.get_approx::<f32>("z").into(),
                };
                let vel = Vector3::<ApproxMode> {
                    x: p.get_approx::<f32>("vx").into(),
                    y: p.get_approx::<f32>("vy").into(),
                    z: p.get_approx::<f32>("vz").into(),
                };
                // a = -k x; semi-implicit Euler.
                let (ax, ay, az) = endorse_vector(pos);
                let (vx, vy, vz) = endorse_vector(vel);
                let (nvx, nvy, nvz) = (vx - ax * DT, vy - ay * DT, vz - az * DT);
                p.set_approx("vx", Approx::new(nvx));
                p.set_approx("vy", Approx::new(nvy));
                p.set_approx("vz", Approx::new(nvz));
                p.set_approx("x", Approx::new(ax + nvx * DT));
                p.set_approx("y", Approx::new(ay + nvy * DT));
                p.set_approx("z", Approx::new(az + nvz * DT));
            }
        }

        // Precise identities must have survived verbatim; approximate
        // positions are best-effort.
        let ids_ok =
            particles.iter_mut().enumerate().all(|(i, p)| p.get_precise::<i64>("id") == i as i64);
        let mut total_r = 0.0f64;
        for p in &mut particles {
            let x = endorse(p.get_approx::<f32>("x"));
            let y = endorse(p.get_approx::<f32>("y"));
            let r = f64::from(x * x + y * y).sqrt();
            if r.is_finite() {
                total_r += r.min(10.0);
            }
        }
        (ids_ok, total_r / PARTICLES as f64)
    });

    println!();
    println!("precise identities intact: {ids_ok}");
    println!("mean orbit radius after {STEPS} steps: {mean_r:.3} (ideal ~1.0 band)");
    let e = rt.energy();
    println!(
        "energy: {:.3} of precise ({:.1}% saved); {} faults injected",
        e.total,
        100.0 * e.savings(),
        rt.stats().faults_injected
    );
    assert!(ids_ok, "precise state must never be corrupted");
}
