//! Cross-crate integration tests: the full pipeline from annotated
//! application code through the simulated hardware to QoS and energy.

use enerj::apps::qos::output_error;
use enerj::apps::{all_apps, harness};
use enerj::core::{endorse, Approx, ApproxVec, Precise, Runtime};
use enerj::hw::config::{HwConfig, Level, StrategyMask};
use enerj::hw::{MemKind, OpKind};

/// The headline result: every application saves energy at every level, in
/// the paper's 10–50% band, and savings grow with aggressiveness.
#[test]
fn energy_savings_fall_in_the_papers_band() {
    for app in all_apps() {
        let mut previous = 0.0;
        for level in Level::ALL {
            let m = harness::approximate(&app, level, 1);
            let savings = m.energy.savings();
            assert!(
                savings > 0.05 && savings < 0.55,
                "{} at {level}: savings {savings:.3} outside the plausible band",
                app.meta.name
            );
            assert!(savings >= previous - 1e-9, "{} at {level}: savings decreased", app.meta.name);
            previous = savings;
        }
    }
}

/// QoS degrades monotonically (on average) with aggressiveness.
#[test]
fn output_error_grows_with_aggressiveness() {
    for app in all_apps() {
        let reference = harness::reference(&app).output;
        let runs = 5;
        let mild = harness::mean_output_error_vs(&app, &reference, Level::Mild, runs);
        let aggressive = harness::mean_output_error_vs(&app, &reference, Level::Aggressive, runs);
        assert!(
            mild <= aggressive + 1e-9,
            "{}: mild {mild} > aggressive {aggressive}",
            app.meta.name
        );
        assert!(mild < 0.25, "{}: mild error {mild} too high", app.meta.name);
    }
}

/// The same seed reproduces the same faulty output exactly (bitwise — a
/// faulty run may legitimately contain NaNs, which `==` would reject).
#[test]
fn fault_injection_is_deterministic_per_seed() {
    use enerj::apps::qos::Output;
    for app in all_apps().into_iter().take(4) {
        let a = harness::approximate(&app, Level::Aggressive, 99).output;
        let b = harness::approximate(&app, Level::Aggressive, 99).output;
        match (&a, &b) {
            (Output::Values(x), Output::Values(y)) => {
                assert_eq!(x.len(), y.len(), "{}", app.meta.name);
                for (u, v) in x.iter().zip(y) {
                    assert_eq!(
                        u.to_bits(),
                        v.to_bits(),
                        "{} diverged across identical seeds",
                        app.meta.name
                    );
                }
            }
            _ => assert_eq!(a, b, "{} diverged across identical seeds", app.meta.name),
        }
    }
}

/// Masked runs are bit-identical to the reference regardless of level.
#[test]
fn masked_runs_are_exact_at_every_level() {
    for app in all_apps().into_iter().take(4) {
        let reference = harness::reference(&app).output;
        for level in Level::ALL {
            let cfg = HwConfig::for_level(level).with_mask(StrategyMask::NONE);
            let m = harness::measure_with(&app, cfg, 5);
            let err = output_error(app.meta.metric, &reference, &m.output);
            assert_eq!(err, 0.0, "{} at {level} masked run differs", app.meta.name);
        }
    }
}

/// The embedded API and the hardware agree on accounting: a program that
/// does exactly N approximate adds reports exactly N approximate ops.
#[test]
fn operation_accounting_is_exact() {
    let cfg = HwConfig::for_level(Level::Medium).with_mask(StrategyMask::NONE);
    let rt = Runtime::with_config(cfg, 0);
    rt.run(|| {
        let mut acc = Approx::new(0i32);
        for i in 0..137 {
            acc += i;
        }
        let mut f = Precise::new(0.0f32);
        for _ in 0..41 {
            f += 1.0;
        }
        let _ = (endorse(acc), f.get());
    });
    let s = rt.stats();
    assert_eq!(s.int_approx_ops, 137);
    assert_eq!(s.fp_precise_ops, 41);
    assert_eq!(s.faults_injected, 0);
}

/// Heap storage accounting matches the section 4.1 layout: an approximate
/// array's header line is precise, everything else approximate.
#[test]
fn dram_accounting_matches_layout() {
    let cfg = HwConfig::for_level(Level::Medium).with_mask(StrategyMask::NONE);
    let rt = Runtime::with_config(cfg, 0);
    rt.run(|| {
        let mut v = ApproxVec::<f64>::new(512); // 4096 data bytes
        for i in 0..v.len() {
            v.set(i, Approx::new(i as f64));
        }
        drop(v);
    });
    let s = rt.stats();
    let frac = s.approx_storage_fraction(MemKind::Dram);
    // Layout: 16-byte header + 48 element bytes on the precise line, the
    // remaining 4048 bytes approximate: 4048/4112 ≈ 0.9844.
    assert!((frac - 4048.0 / 4112.0).abs() < 1e-6, "frac = {frac}");
}

/// Figure 3 fractions from the harness agree between repeated runs (they
/// depend only on the annotation, not the seed).
#[test]
fn figure3_fractions_are_seed_independent() {
    let app = &all_apps()[0]; // FFT
    let a = harness::approximate(app, Level::Medium, 1).stats;
    let b = harness::approximate(app, Level::Medium, 2).stats;
    assert_eq!(a.total_ops(OpKind::Fp), b.total_ops(OpKind::Fp));
    assert_eq!(a.total_ops(OpKind::Int), b.total_ops(OpKind::Int));
    assert!((a.approx_op_fraction(OpKind::Fp) - b.approx_op_fraction(OpKind::Fp)).abs() < 1e-12);
}

/// The FP-heavy / integer-heavy split of Table 3 holds: raytracing is
/// mostly FP, barcode decoding mostly integer.
#[test]
fn table3_fp_proportions_have_the_papers_shape() {
    let apps = all_apps();
    let fp_of = |name: &str| {
        let app = apps.iter().find(|a| a.meta.name == name).expect("registered");
        harness::reference(app).stats.fp_proportion()
    };
    assert!(fp_of("Raytracer") > 0.6);
    assert!(fp_of("jMonkeyEngine") > 0.6);
    assert!(fp_of("ZXing") < 0.1);
    assert!(fp_of("ImageJ") < 0.1);
    assert!(fp_of("MonteCarlo") > 0.2 && fp_of("MonteCarlo") < 0.8);
}

/// MonteCarlo and jMonkeyEngine keep their principal data in locals: no
/// approximate DRAM (the paper's explicit observation about Figure 3).
#[test]
fn stack_resident_apps_use_no_approximate_dram() {
    let apps = all_apps();
    for name in ["MonteCarlo", "jMonkeyEngine"] {
        let app = apps.iter().find(|a| a.meta.name == name).expect("registered");
        let s = harness::reference(app).stats;
        assert!(s.dram_approx_quanta.is_zero(), "{name} should keep data on the stack");
    }
}
