//! Property-based tests for the FEnerJ language: parser/printer round
//! trips over generated expressions, and the non-interference theorem over
//! *generated* well-typed programs — the strongest dynamic evidence this
//! reproduction offers for the paper's section 3.3 result.

use enerj::hw::config::{HwConfig, Level};
use enerj::hw::Hardware;
use enerj::lang::error::EvalError;
use enerj::lang::interp::{run, ExecMode};
use enerj::lang::noninterference::check_non_interference;
use enerj::lang::parser::parse_expr;
use enerj::lang::pretty::{expr_structurally_eq, expr_to_display};
use enerj::lang::{compile, typecheck};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// A generator of syntactically valid FEnerJ integer expressions over the
/// variables `x` and `y` (precise) — a recursive grammar sampler.
fn int_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            (0i64..100).prop_map(|v| v.to_string()),
            Just("x".to_owned()),
            Just("y".to_owned()),
        ]
        .boxed()
    } else {
        let sub = int_expr(depth - 1);
        prop_oneof![
            int_expr(0),
            (sub.clone(), prop::sample::select(vec!["+", "-", "*"]), sub.clone())
                .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
            (sub.clone(), sub.clone(), sub.clone())
                .prop_map(|(c, t, e)| format!("if (({c}) < 10) {{ {t} }} else {{ {e} }}")),
            (sub.clone(), sub).prop_map(|(v, b)| format!("let z = ({v}) in ({b})")),
        ]
        .boxed()
    }
}

/// A generator of whole well-typed programs: one class mixing approximate
/// and precise integer fields, mutated by a recursive method, returning
/// precise state. Well-typed *by construction*: approximate data flows
/// only into approximate fields.
fn isolated_program() -> impl Strategy<Value = String> {
    let stmt = prop_oneof![
        // Precise updates of precise state.
        (0i64..50).prop_map(|v| format!("this.p := this.p + {v}")),
        (1i64..7).prop_map(|v| format!("this.p := this.p * {v}")),
        // Approximate updates of approximate state (precise operands flow
        // in via subtyping).
        (0i64..50).prop_map(|v| format!("this.a := this.a + {v}")),
        (1i64..7).prop_map(|v| format!("this.a := this.a * {v} + this.p")),
        // Precise-to-approximate crossover (legal direction).
        Just("this.a := this.p".to_owned()),
    ];
    (prop::collection::vec(stmt, 1..8), 1u32..20).prop_map(|(stmts, reps)| {
        format!(
            "class W extends Object {{
                 approx int a;
                 int p;
                 int work(int n) {{
                     if (n == 0) {{ this.p }}
                     else {{ {}; this.work(n - 1) }}
                 }}
             }}
             main {{ new W().work({reps}) }}",
            stmts.join("; ")
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pretty-printing a parsed expression and reparsing it yields a
    /// structurally identical tree.
    #[test]
    fn print_parse_roundtrip(src in int_expr(3)) {
        let original = parse_expr(&src).expect("generated expressions parse");
        let printed = expr_to_display(&original);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|e| panic!("reparse of {printed:?} failed: {e}"));
        prop_assert!(
            expr_structurally_eq(&original, &reparsed),
            "round trip changed {src:?} -> {printed:?}"
        );
    }

    /// Generated precise integer expressions type-check at `precise int`
    /// and evaluate identically under the reliable and chaos semantics
    /// (non-interference for the expression fragment).
    #[test]
    fn precise_expressions_are_chaos_immune(body in int_expr(3), seed: u64) {
        let src = format!("main {{ let x = 3 in let y = 17 in {body} }}");
        let program = compile(&src).expect("generated programs are well-typed");
        prop_assert_eq!(
            program.main_type(),
            &enerj::lang::types::Type::precise_int()
        );
        let reliable = run(&program, ExecMode::Reliable).expect("evaluates");
        let chaotic = run(&program, ExecMode::Chaos { seed }).expect("evaluates");
        prop_assert_eq!(reliable.value, chaotic.value);
    }

    /// Non-interference over generated stateful programs: whatever the
    /// adversary does to the approximate field, the precise result stands.
    #[test]
    fn generated_programs_are_non_interfering(src in isolated_program()) {
        let program = compile(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        check_non_interference(&program, 0..10).unwrap_or_else(|e| panic!("{src}\n{e}"));
    }

    /// The checker's verdict is stable under pretty-printing: a well-typed
    /// program stays well-typed after a round trip through the printer.
    #[test]
    fn checking_is_stable_under_printing(src in isolated_program()) {
        let first = compile(&src).expect("well-typed");
        let printed = enerj::lang::pretty::program_to_string(&first.program);
        let second = enerj::lang::parser::parse(&printed)
            .unwrap_or_else(|e| panic!("{printed}\n{e}"));
        typecheck::check(second).unwrap_or_else(|e| panic!("{printed}\n{e}"));
    }

    /// Dynamic type soundness: generated well-typed programs never trip an
    /// internal interpreter error under any semantics — every failure mode
    /// is a *language-level* error the checker permits (there are none in
    /// this fragment) or a fault-model perturbation.
    #[test]
    fn well_typed_programs_never_go_wrong(src in isolated_program(), seed: u64) {
        let program = compile(&src).expect("well-typed");
        let modes: [ExecMode; 3] = [
            ExecMode::Reliable,
            ExecMode::Faulty(Rc::new(RefCell::new(Hardware::new(
                HwConfig::for_level(Level::Aggressive),
                seed,
            )))),
            ExecMode::Chaos { seed },
        ];
        for mode in modes {
            match run(&program, mode) {
                Ok(_) => {}
                Err(EvalError::Internal(msg)) => {
                    panic!("soundness violation on:\n{src}\n{msg}")
                }
                Err(other) => panic!("unexpected runtime error on:\n{src}\n{other}"),
            }
        }
    }

    /// The front end never panics, whatever bytes it is fed: it returns a
    /// structured error instead.
    #[test]
    fn frontend_total_on_arbitrary_input(src in ".{0,200}") {
        let _ = compile(&src); // must not panic
    }

    /// Nor on inputs built from the language's own token vocabulary, which
    /// exercise far deeper parser paths than random unicode.
    #[test]
    fn frontend_total_on_token_soup(
        tokens in prop::collection::vec(
            prop::sample::select(vec![
                "class", "extends", "main", "new", "this", "null", "if",
                "else", "let", "in", "endorse", "while", "int", "float",
                "precise", "approx", "top", "context", "{", "}", "(", ")",
                "[", "]", ";", ",", ".", ":=", "=", "+", "-", "*", "/",
                "%", "==", "!=", "<", "<=", ">", ">=", "x", "C", "3", "2.5",
            ]),
            0..60,
        ),
    ) {
        let src = tokens.join(" ");
        let _ = compile(&src); // must not panic
    }
}
