//! Property-based tests over the core invariants of every layer.

use enerj::core::{endorse, Approx, ApproxPrim, ApproxVec, Runtime};
use enerj::hw::config::{ApproxParams, HwConfig, Level, StrategyMask};
use enerj::hw::energy::normalized_energy;
use enerj::hw::stats::{MemKind, OpKind, Stats};
use enerj::hw::{fault, layout};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn exact_rt(seed: u64) -> Runtime {
    Runtime::with_config(HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE), seed)
}

proptest! {
    /// Bit-pattern round trips for every qualifiable primitive.
    #[test]
    fn prim_bits_roundtrip_i64(x: i64) {
        prop_assert_eq!(i64::from_bits64(x.to_bits64()), x);
    }

    #[test]
    fn prim_bits_roundtrip_i16(x: i16) {
        prop_assert_eq!(i16::from_bits64(x.to_bits64()), x);
        // The pattern is confined to the declared width.
        prop_assert_eq!(x.to_bits64() >> 16, 0);
    }

    #[test]
    fn prim_bits_roundtrip_f64(x: f64) {
        prop_assert_eq!(f64::from_bits64(x.to_bits64()).to_bits(), x.to_bits());
    }

    #[test]
    fn prim_bits_roundtrip_f32(x: f32) {
        let y = f32::from_bits64(x.to_bits64());
        prop_assert_eq!(y.to_bits(), x.to_bits());
    }

    /// Fault injection touches only the requested bit range.
    #[test]
    fn flip_bits_confined_to_width(bits: u64, width in 0u32..=64, p in 0.0f64..=1.0, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = fault::flip_bits(bits, width, p, &mut rng);
        prop_assert_eq!(out & !fault::low_mask(width), bits & !fault::low_mask(width));
    }

    #[test]
    fn flip_bits_zero_probability_is_identity(bits: u64, width in 0u32..=64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(fault::flip_bits(bits, width, 0.0, &mut rng), bits);
    }

    /// Layout conserves bytes and produces sensible fractions.
    #[test]
    fn layout_conserves_bytes(
        precise in 0usize..500,
        approx in 0usize..5000,
        line in prop::sample::select(vec![16usize, 32, 64, 128, 256]),
    ) {
        let fields = [
            layout::FieldSpec::new("p", precise, false),
            layout::FieldSpec::new("a", approx, true),
        ];
        let l = layout::layout_object(&fields, line, 0);
        prop_assert_eq!(l.total_bytes(), precise + approx);
        let f = l.approx_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }

    /// Doubling the cache-line size never increases the approximable
    /// fraction of an array (the paper's granularity remark).
    #[test]
    fn coarser_lines_never_help(
        elem in prop::sample::select(vec![1usize, 2, 4, 8]),
        len in 1usize..2000,
        line in prop::sample::select(vec![16usize, 32, 64, 128]),
    ) {
        let fine = layout::layout_array(elem, len, true, line, layout::ARRAY_HEADER_BYTES);
        let coarse = layout::layout_array(elem, len, true, line * 2, layout::ARRAY_HEADER_BYTES);
        prop_assert!(fine.approx_fraction() >= coarse.approx_fraction() - 1e-12);
    }

    /// With every strategy masked, approximate integer arithmetic equals
    /// wrapping arithmetic with total division.
    #[test]
    fn masked_approx_arithmetic_is_wrapping(ops in prop::collection::vec((0u8..5, any::<i64>()), 1..40)) {
        let rt = exact_rt(1);
        let (observed, expected) = rt.run(|| {
            let mut acc = Approx::new(1i64);
            let mut model = 1i64;
            for (op, v) in &ops {
                match op {
                    0 => { acc += *v; model = model.wrapping_add(*v); }
                    1 => { acc -= *v; model = model.wrapping_sub(*v); }
                    2 => { acc *= *v; model = model.wrapping_mul(*v); }
                    3 => {
                        acc /= *v;
                        model = if *v == 0 { 0 } else { model.wrapping_div(*v) };
                    }
                    _ => {
                        acc %= *v;
                        model = if *v == 0 { 0 } else { model.wrapping_rem(*v) };
                    }
                }
            }
            (endorse(acc), model)
        });
        prop_assert_eq!(observed, expected);
    }

    /// ApproxVec is an exact store under a masked runtime, for any data.
    #[test]
    fn masked_approx_vec_roundtrips(data in prop::collection::vec(any::<f64>(), 1..200)) {
        let rt = exact_rt(2);
        rt.run(|| {
            let mut v = ApproxVec::from_slice(&data);
            for (i, &x) in data.iter().enumerate() {
                let y = endorse(v.get(i));
                prop_assert_eq!(y.to_bits(), x.to_bits());
            }
            Ok(())
        })?;
    }

    /// Normalized energy is in (0, 1] and never *increases* with a more
    /// aggressive parameter set for the same run.
    #[test]
    fn energy_is_bounded_and_monotone(
        int_a in 0u64..100_000,
        int_p in 0u64..100_000,
        fp_a in 0u64..100_000,
        fp_p in 0u64..100_000,
        sram_a in 0.0f64..1e6,
        dram_a in 0.0f64..1e6,
        sram_p in 0.0f64..1e6,
        dram_p in 0.0f64..1e6,
    ) {
        let mut s = Stats::new();
        s.int_approx_ops = int_a;
        s.int_precise_ops = int_p;
        s.fp_approx_ops = fp_a;
        s.fp_precise_ops = fp_p;
        s.record_storage(MemKind::Sram, true, sram_a, 1.0);
        s.record_storage(MemKind::Sram, false, sram_p, 1.0);
        s.record_storage(MemKind::Dram, true, dram_a, 1.0);
        s.record_storage(MemKind::Dram, false, dram_p, 1.0);
        let mut last = 0.0f64;
        for params in [ApproxParams::MILD, ApproxParams::MEDIUM, ApproxParams::AGGRESSIVE] {
            let e = normalized_energy(&s, &params);
            prop_assert!(e.total > 0.0 && e.total <= 1.0 + 1e-12, "total {}", e.total);
            if last != 0.0 {
                prop_assert!(e.total <= last + 1e-12, "energy increased with level");
            }
            last = e.total;
        }
    }

    /// QoS metrics stay within [0, 1] for arbitrary numeric outputs.
    #[test]
    fn qos_is_bounded(
        r in prop::collection::vec(-1e12f64..1e12, 1..50),
        o in prop::collection::vec(prop::num::f64::ANY, 1..50),
    ) {
        use enerj::apps::qos::{output_error, Output, QosMetric};
        let n = r.len().min(o.len());
        let rv = Output::Values(r[..n].to_vec());
        let ov = Output::Values(o[..n].to_vec());
        for metric in [
            QosMetric::MeanEntryDiff,
            QosMetric::MeanNormalizedDiff,
            QosMetric::MeanPixelDiff { full_scale: 255.0 },
        ] {
            let e = output_error(metric, &rv, &ov);
            prop_assert!((0.0..=1.0).contains(&e), "{metric:?} -> {e}");
        }
    }

    /// Statistics fractions are always within [0, 1].
    #[test]
    fn stats_fractions_bounded(
        ia in 0u64..1_000_000, ip in 0u64..1_000_000,
        fa in 0u64..1_000_000, fp in 0u64..1_000_000,
    ) {
        let mut s = Stats::new();
        s.int_approx_ops = ia;
        s.int_precise_ops = ip;
        s.fp_approx_ops = fa;
        s.fp_precise_ops = fp;
        for v in [
            s.approx_op_fraction(OpKind::Int),
            s.approx_op_fraction(OpKind::Fp),
            s.fp_proportion(),
        ] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }
}
