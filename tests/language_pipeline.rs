//! Integration tests for the FEnerJ pipeline against the embedded API:
//! the two renderings of the programming model must agree on semantics.

use enerj::core::{endorse, Approx, Runtime};
use enerj::hw::config::{HwConfig, Level, StrategyMask};
use enerj::hw::Hardware;
use enerj::lang::interp::{run, ExecMode, Value};
use enerj::lang::noninterference::check_non_interference;
use enerj::lang::{compile, CompileError};
use std::cell::RefCell;
use std::rc::Rc;

/// The same approximate accumulation, written once in FEnerJ and once in
/// the embedded API, produces the same value on the same masked hardware.
#[test]
fn fenerj_and_embedded_api_agree_on_masked_hardware() {
    let src = "
        class Acc extends Object {
            approx float total;
            float go(int n) {
                if (n == 0) { endorse(this.total) }
                else { this.total := this.total + 1.25; this.go(n - 1) }
            }
        }
        main { new Acc().go(64) }
    ";
    let program = compile(src).expect("well-typed");
    let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
    let hw = Rc::new(RefCell::new(Hardware::new(cfg, 0)));
    let lang_out = run(&program, ExecMode::Faulty(hw)).expect("runs");

    let rt = Runtime::with_config(cfg, 0);
    let api_out = rt.run(|| {
        let mut total = Approx::new(0.0f64);
        for _ in 0..64 {
            total += 1.25;
        }
        endorse(total)
    });

    assert_eq!(lang_out.value, Value::Float(api_out));
    assert_eq!(api_out, 80.0);
}

/// Both renderings charge the same number of approximate FP operations
/// for the same algorithm.
#[test]
fn op_accounting_matches_across_renderings() {
    let src = "
        class Acc extends Object {
            approx float total;
            float go(int n) {
                if (n == 0) { endorse(this.total) }
                else { this.total := this.total + 1.0; this.go(n - 1) }
            }
        }
        main { new Acc().go(32) }
    ";
    let program = compile(src).expect("well-typed");
    let cfg = HwConfig::for_level(Level::Mild).with_mask(StrategyMask::NONE);
    let hw = Rc::new(RefCell::new(Hardware::new(cfg, 0)));
    run(&program, ExecMode::Faulty(Rc::clone(&hw))).expect("runs");
    let lang_fp = hw.borrow().stats().fp_approx_ops;

    let rt = Runtime::with_config(cfg, 0);
    rt.run(|| {
        let mut total = Approx::new(0.0f64);
        for _ in 0..32 {
            total += 1.0;
        }
        let _ = endorse(total);
    });
    assert_eq!(lang_fp, rt.stats().fp_approx_ops);
    assert_eq!(lang_fp, 32);
}

/// A library of well-typed, endorsement-free FEnerJ programs satisfies
/// non-interference under the chaos adversary.
#[test]
fn non_interference_holds_for_a_program_library() {
    let programs = [
        // Pure precise computation.
        "main { let x = 2 in x * x + x }",
        // Approximate work discarded.
        "class C extends Object { approx float junk; }
         main { let c = new C() in c.junk := 3.5; 7 }",
        // Precise and approximate interleaved through method calls.
        "class M extends Object {
             approx int a;
             int p;
             int step(int n) {
                 if (n == 0) { this.p }
                 else { this.a := this.a * 3 + n; this.p := this.p + 1; this.step(n - 1) }
             }
         }
         main { new M().step(30) }",
        // Context fields on a precise instance stay precise; the getter
        // must itself be context-typed (it serves both instantiations).
        "class Pair extends Object {
             context int x;
             context int get() { this.x }
         }
         main { let p = new Pair() in p.x := 9; p.get() }",
        // Approximate instances: their context fields are fair game for
        // the adversary, but the result here only uses precise state.
        "class Pair extends Object { context int x; int tag; }
         main {
             let a = new approx Pair() in
             a.x := 5;
             a.tag := 11;
             a.tag
         }",
    ];
    for (i, src) in programs.iter().enumerate() {
        let program = compile(src).unwrap_or_else(|e| panic!("program {i}: {e}"));
        check_non_interference(&program, 0..25).unwrap_or_else(|e| panic!("program {i}: {e}"));
    }
}

/// The checker rejects every flavor of illegal flow the paper enumerates.
#[test]
fn checker_rejects_the_papers_illegal_programs() {
    let illegal = [
        // Direct assignment (section 2.1).
        "class C extends Object { approx int a; int p; }
         main { let c = new C() in c.p := c.a }",
        // Implicit flow via a condition (section 2.4).
        "class C extends Object { approx int val; }
         main { let c = new C() in if (c.val == 5) { 1 } else { 0 } }",
        // Qualifier-narrowing cast.
        "class C extends Object {}
         main { (precise C) new approx C() }",
        // Write through lost context (section 3.1).
        "class C extends Object { context int x; }
         main { let t = (top C) new C() in t.x := 1 }",
        // Approximate argument to a precise parameter.
        "class C extends Object {
             approx int a;
             int id(int x) { x }
         }
         main { let c = new C() in c.id(c.a) }",
    ];
    for (i, src) in illegal.iter().enumerate() {
        match compile(src) {
            Err(CompileError::Type(_)) => {}
            other => panic!("program {i} should be a type error, got {other:?}"),
        }
    }
}

/// Endorsement-free approximate results really are at the adversary's
/// mercy — the converse of non-interference.
#[test]
fn chaos_perturbs_approximate_results() {
    let src = "
        class C extends Object { approx int a; }
        main { let c = new C() in c.a := 5; c.a + 1 }
    ";
    let program = compile(src).expect("well-typed");
    let reliable = run(&program, ExecMode::Reliable).expect("runs").value;
    let changed = (0..10)
        .any(|seed| run(&program, ExecMode::Chaos { seed }).expect("runs").value != reliable);
    assert!(changed, "the adversary must be able to change approximate results");
}
