//! Offline, in-tree stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`criterion_group!`] and [`criterion_main!`] — backed by a simple
//! wall-clock measurement loop: a warm-up phase, then `sample_size`
//! samples whose median per-iteration time is reported on stdout.
//!
//! No statistics beyond the median, no HTML reports, no comparison against
//! saved baselines; enough to observe relative throughput of the kernels
//! and fault-model primitives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendering just a parameter value (e.g. a size or probability).
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter.
    pub fn new<D1: Display, D2: Display>(function: D1, parameter: D2) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The per-benchmark timing driver passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, keeping the result alive via
    /// [`black_box`] so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

/// Per-iteration nanoseconds of one timed sample.
fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> f64 {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed.as_secs_f64() * 1e9 / iters.max(1) as f64
}

/// Picks an iteration count that makes one sample take roughly 5 ms.
fn calibrate<F: FnMut(&mut Bencher)>(f: &mut F) -> u64 {
    let mut iters = 1u64;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            return iters;
        }
        iters *= 2;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let iters = calibrate(&mut f);
    let mut ns: Vec<f64> = (0..samples.max(1)).map(|_| time_once(&mut f, iters)).collect();
    ns.sort_by(|a, b| a.total_cmp(b));
    let median = ns[ns.len() / 2];
    println!("bench {label:<40} {median:>12.1} ns/iter ({samples} samples x {iters} iters)");
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<D: Display>(&mut self, name: D) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), sample_size: self.sample_size, _criterion: self }
    }

    /// Times a single free-standing benchmark.
    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(&mut self, name: D, f: F) {
        run_benchmark(&name.to_string(), self.sample_size, f);
    }
}

/// A named collection of benchmarks sharing a sample count.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Times one benchmark in the group.
    pub fn bench_function<D: Display, F: FnMut(&mut Bencher)>(&mut self, id: D, f: F) {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
    }

    /// Times one benchmark parameterized by `input`.
    pub fn bench_with_input<D, I, F>(&mut self, id: D, input: &I, mut f: F)
    where
        D: Display,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, |b| f(b, input));
    }

    /// Ends the group (present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_elapsed_time() {
        let mut b = Bencher { iters: 10, elapsed: Duration::ZERO };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion { sample_size: 2 };
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        group.finish();
        assert!(ran);
    }
}
