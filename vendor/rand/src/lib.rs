//! Offline, in-tree stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.8-compatible API subset).
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small slice of `rand` it actually uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`) and [`rngs::StdRng`].
//!
//! The generator is **not** the upstream ChaCha-based `StdRng`; it is
//! xoshiro256\*\* seeded through SplitMix64 — deterministic, seedable,
//! high-quality for simulation purposes, and dependency-free. Streams are
//! stable across platforms and releases of this workspace, which is the
//! property the fault-injection harness relies on (the paper's experiments
//! are means over seeded runs, not functions of one specific stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A seedable random-number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Equal seeds yield equal streams; distinct seeds yield streams that
    /// are, for simulation purposes, independent.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an [`RngCore`]
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly (the argument of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift mapping of a random word onto `[0, span)`.
///
/// The modulo bias is at most `span / 2^64`, far below anything the
/// simulation statistics could resolve.
fn uniform_below(span: u64, rng: &mut (impl RngCore + ?Sized)) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(uniform_below(span, rng) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(span + 1, rng) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly-distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly-distributed value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of [0, 1]");
        // 0.0 never fires even if the draw is exactly 0.0; 1.0 always does.
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*,
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// One SplitMix64 step, used to expand a 64-bit seed into generator
    /// state and guarantee a non-zero state for any seed.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::seed_from_u64(0);
        let words: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0));
        assert!(words.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = r.gen_range(0u32..64);
            assert!(a < 64);
            let b = r.gen_range(-6i32..=6);
            assert!((-6..=6).contains(&b));
            let c = r.gen_range(10usize..11);
            assert_eq!(c, 10);
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
        assert!(!(0..1_000).any(|_| r.gen_bool(0.0)));
        assert!((0..1_000).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn first_moment_of_u64_is_centred() {
        let mut r = StdRng::seed_from_u64(17);
        let n = 50_000u64;
        let mean = (0..n).map(|_| (r.next_u64() >> 32) as f64).sum::<f64>() / n as f64;
        let expected = (u32::MAX as f64) / 2.0;
        assert!((mean - expected).abs() < expected * 0.01, "mean {mean}");
    }
}
