//! Offline, in-tree stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment for this repository has no crates.io access, so
//! the workspace vendors the slice of proptest its property tests use:
//!
//! * the [`proptest!`] macro with `name: Type` and `name in strategy`
//!   parameters and an optional `#![proptest_config(..)]` header;
//! * [`strategy::Strategy`] with `prop_map` and `boxed`,
//!   [`strategy::Just`], [`strategy::Union`] (via [`prop_oneof!`]),
//!   range and tuple strategies, and string generation from a
//!   (drastically simplified) pattern;
//! * [`arbitrary::any`] / [`arbitrary::Arbitrary`] for primitives;
//! * [`collection::vec`], [`sample::select`], [`num::f64::ANY`];
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning
//!   [`test_runner::TestCaseError`].
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs and the
//!   case number; it does not minimize them.
//! * **String "regex" patterns** are not real regexes: `.{a,b}` (any
//!   characters, length in `[a, b]`) is honoured, anything else falls back
//!   to short arbitrary strings. The tests in this workspace only use the
//!   pattern form.
//! * Case generation is deterministic per case index (no `PROPTEST_*`
//!   environment handling), so test runs are reproducible by construction.
//!   The one environment knob is `ENERJ_PROPTEST_CASES`, which overrides
//!   the *number* of cases a default-configured block runs (never the
//!   cases themselves): CI smoke keeps the 256-case default while deep
//!   runs scale the same tests up, exactly like `ENERJ_FUZZ_CASES` does
//!   for the conformance fuzzer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration, RNG and error types.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Configuration for a [`proptest!`](crate::proptest) block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        /// 256 cases, overridable with the `ENERJ_PROPTEST_CASES`
        /// environment variable (ignored when unset or unparsable).
        fn default() -> Self {
            let cases = std::env::var("ENERJ_PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(256);
            Config { cases }
        }
    }

    /// A test-case failure produced by `prop_assert!`-style macros.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }

        /// Upstream-compatible alias of [`TestCaseError::fail`].
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// The deterministic generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// The generator for case number `case` (stable across runs).
        pub fn for_case(case: u64) -> Self {
            TestRng(StdRng::seed_from_u64(
                0xC0FF_EE00_D15E_A5E5 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// A strategy applying `map` to every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { generate: Rc::new(move |rng| self.generate(rng)) }
        }
    }

    /// A type-erased, clonable strategy.
    pub struct BoxedStrategy<T> {
        generate: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { generate: Rc::clone(&self.generate) }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.generate)(rng)
        }
    }

    /// Always generates a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    /// Uniform choice among several strategies (see
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { options: self.options.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // The endpoint has probability ~0 anyway; sample the
                    // half-open range and occasionally pin the bounds so
                    // `a..=b` actually exercises both ends.
                    match rng.gen_range(0u32..64) {
                        0 => *self.start(),
                        1 => *self.end(),
                        _ => {
                            let u: $t = rng.gen();
                            *self.start() + u * (*self.end() - *self.start())
                        }
                    }
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// String generation from a drastically simplified pattern language:
    /// `.{a,b}` means "any characters, length uniform in `[a, b]`"; any
    /// other pattern falls back to arbitrary strings of length 0..=32.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
            let len = rng.gen_range(lo..=hi);
            // A deliberately hostile alphabet: ASCII structure characters,
            // quotes, digits, letters and a few multibyte code points.
            const ALPHABET: &[char] = &[
                'a',
                'b',
                'z',
                'A',
                'Z',
                '0',
                '9',
                ' ',
                '\t',
                '\n',
                '_',
                '.',
                ',',
                ';',
                ':',
                '{',
                '}',
                '(',
                ')',
                '[',
                ']',
                '<',
                '>',
                '+',
                '-',
                '*',
                '/',
                '%',
                '=',
                '!',
                '"',
                '\'',
                '\\',
                '#',
                '@',
                '~',
                '^',
                '&',
                '|',
                '?',
                '\u{0}',
                'é',
                'λ',
                '中',
                '\u{1F600}',
            ];
            (0..len).map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())]).collect()
        }
    }

    /// Parses a `.{a,b}` pattern into its length bounds.
    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?;
        let rest = rest.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

/// `any::<T>()`: generation of arbitrary primitive values.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Bias toward boundary values, which find edge-case
                    // bugs far more often than uniform sampling does.
                    match rng.gen_range(0u32..16) {
                        0 => 0,
                        1 => <$t>::MAX,
                        2 => <$t>::MIN,
                        3 => 1,
                        _ => rng.gen::<u64>() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.gen::<u64>() as u128) << 64 | rng.gen::<u64>() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32(rng.gen_range(0u32..=0x10FFFF)).unwrap_or('\u{FFFD}')
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::num::f64::any_value(rng)
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            match rng.gen_range(0u32..12) {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                5 => f32::MIN_POSITIVE / 2.0, // subnormal
                6 => f32::MAX,
                _ => f32::from_bits(rng.gen::<u32>()),
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// A strategy drawing uniformly from `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

/// Numeric strategies (`prop::num`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use rand::Rng;

        /// Draws any `f64`, including NaN, infinities, zeros and
        /// subnormals.
        pub(crate) fn any_value(rng: &mut TestRng) -> f64 {
            match rng.gen_range(0u32..12) {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                3 => 0.0,
                4 => -0.0,
                5 => f64::MIN_POSITIVE / 2.0, // subnormal
                6 => f64::MAX,
                _ => f64::from_bits(rng.gen::<u64>()),
            }
        }

        /// The strategy type of [`ANY`].
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        impl Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                any_value(rng)
            }
        }

        /// Generates any `f64` bit pattern class, NaN included.
        pub const ANY: Any = Any;
    }
}

/// Everything a property-test module needs, plus the `prop` path alias.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current case with a message unless `cond` holds.
///
/// Expands to an early `return` of `Err(TestCaseError)`, so it may only be
/// used inside functions/closures returning
/// `Result<_, TestCaseError>` — which is what test bodies inside
/// [`proptest!`] are.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Fails the current case unless the two expressions compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn holds(x: u64, p in 0.0f64..=1.0) {
///         prop_assert!(p <= 1.0, "x = {x}");
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one rule per test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { ($cfg) [] ($($params)*) $body }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: parameter-list muncher and the
/// per-case driver.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Munch `name in strategy`.
    (($cfg:expr) [$($acc:tt)*] ($name:ident in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case! { ($cfg) [$($acc)* ($name, $strat)] ($($rest)*) $body }
    };
    (($cfg:expr) [$($acc:tt)*] ($name:ident in $strat:expr) $body:block) => {
        $crate::__proptest_case! { ($cfg) [$($acc)* ($name, $strat)] () $body }
    };
    // Munch `name: Type` as `any::<Type>()`.
    (($cfg:expr) [$($acc:tt)*] ($name:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case! {
            ($cfg) [$($acc)* ($name, $crate::arbitrary::any::<$ty>())] ($($rest)*) $body
        }
    };
    (($cfg:expr) [$($acc:tt)*] ($name:ident : $ty:ty) $body:block) => {
        $crate::__proptest_case! {
            ($cfg) [$($acc)* ($name, $crate::arbitrary::any::<$ty>())] () $body
        }
    };
    // All parameters munched: run the cases.
    (($cfg:expr) [$(($name:ident, $strat:expr))*] () $body:block) => {{
        let __config: $crate::test_runner::Config = $cfg;
        for __case in 0..__config.cases {
            let mut __rng = $crate::test_runner::TestRng::for_case(u64::from(__case));
            $(let $name = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
            let __inputs =
                format!(concat!("[", $(stringify!($name), " = {:?}, ",)* "]"), $(&$name),*);
            let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                },
            ));
            match __outcome {
                ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                ::core::result::Result::Ok(::core::result::Result::Err(e)) => {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs: {}",
                        __case, __config.cases, e, __inputs
                    );
                }
                ::core::result::Result::Err(payload) => {
                    eprintln!(
                        "proptest case {}/{} panicked; inputs: {}",
                        __case, __config.cases, __inputs
                    );
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let mut rng = TestRng::for_case(0);
        let s = (0i64..10, 1u32..=3).prop_map(|(a, b)| a + i64::from(b));
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..13).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_alternative() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::for_case(1);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn vec_and_select_respect_bounds() {
        let s = crate::collection::vec(crate::sample::select(vec![7usize, 9]), 2..5);
        let mut rng = TestRng::for_case(2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|&x| x == 7 || x == 9));
        }
    }

    #[test]
    fn string_pattern_controls_length() {
        let mut rng = TestRng::for_case(3);
        for _ in 0..100 {
            let s = Strategy::generate(&".{0,5}", &mut rng);
            assert!(s.chars().count() <= 5);
        }
    }

    #[test]
    fn f64_any_produces_special_values() {
        let mut rng = TestRng::for_case(4);
        let vals: Vec<f64> = (0..500).map(|_| crate::num::f64::ANY.generate(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_nan()));
        assert!(vals.iter().any(|v| v.is_infinite()));
        assert!(vals.iter().any(|v| v.is_finite()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x: u8, y in 0u32..10, v in prop::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(y < 10, "y = {y}");
            prop_assert_eq!(u32::from(x) + y - y, u32::from(x));
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    fn default_case_count_honours_the_environment() {
        // Serial with respect to itself only: no other test in this
        // binary reads or writes ENERJ_PROPTEST_CASES.
        assert_eq!(ProptestConfig::default().cases, 256);
        std::env::set_var("ENERJ_PROPTEST_CASES", "17");
        assert_eq!(ProptestConfig::default().cases, 17);
        std::env::set_var("ENERJ_PROPTEST_CASES", "not-a-number");
        assert_eq!(ProptestConfig::default().cases, 256);
        std::env::set_var("ENERJ_PROPTEST_CASES", "0");
        assert_eq!(ProptestConfig::default().cases, 256);
        std::env::remove_var("ENERJ_PROPTEST_CASES");
        // Explicit configuration is never overridden.
        std::env::set_var("ENERJ_PROPTEST_CASES", "9999");
        assert_eq!(ProptestConfig::with_cases(32).cases, 32);
        std::env::remove_var("ENERJ_PROPTEST_CASES");
    }
}
