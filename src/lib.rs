//! # EnerJ-RS
//!
//! A Rust reproduction of *EnerJ: Approximate Data Types for Safe and General
//! Low-Power Computation* (Sampson et al., PLDI 2011).
//!
//! This umbrella crate re-exports the four member crates:
//!
//! * [`hw`] — the approximation-aware hardware substrate: fault-injecting
//!   models of SRAM, DRAM and functional units, the cache-line layout scheme,
//!   and the paper's energy model (§4–§5).
//! * [`core`] — the EnerJ programming model embedded in Rust: the
//!   [`Approx`](core::Approx) qualifier type, [`endorse`](core::endorse),
//!   approximate arithmetic and approximate collections (§2).
//! * [`lang`] — FEnerJ, the paper's formal core language (§3), with a lexer,
//!   parser, type checker and big-step interpreter, plus a non-interference
//!   test harness.
//! * [`apps`] — the ported benchmark applications and their quality-of-service
//!   metrics (§6, Table 3).
//!
//! ## Quick start
//!
//! ```
//! use enerj::core::{Approx, endorse, Runtime};
//! use enerj::hw::config::Level;
//!
//! let rt = Runtime::new(Level::Medium, 42);
//! let out = rt.run(|| {
//!     let a = Approx::new(2.0f32);
//!     let b = Approx::new(3.0f32);
//!     endorse(a * b) // approximate multiply, explicit endorsement
//! });
//! assert!(out.is_finite());
//! ```

pub use enerj_apps as apps;
pub use enerj_core as core;
pub use enerj_hw as hw;
pub use enerj_lang as lang;
